// Package stats provides the engine's observability primitives: lock-free
// latency histograms, a ring-buffered slow-query log, and the snapshot
// types the engine exposes over core.Conn, sqlshell, and HTTP.
//
// The package deliberately has no dependency on the engine — the engine
// imports stats, never the reverse — so the same types serve the SQL
// engine, the CSV backend, and any future wire server.
//
// Recording is designed for hot paths: a Histogram observation is one
// atomic add on a fixed log2 bucket plus one atomic add on the sum; no
// locks, no allocation. A package-level enabled gate (default on) lets
// benchmarks measure the overhead of the instrumentation itself.
package stats

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket 0 holds non-positive
// values, bucket i (1..38) holds [2^(i-1), 2^i), and bucket 39 holds
// everything at or above 2^38 ns (~4.6 minutes) — wide enough for any
// statement latency worth recording.
const histBuckets = 40

// enabled gates all recording. Snapshots still work when disabled; only
// the hot-path Observe calls become cheap no-ops.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether metric recording is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns metric recording on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// Histogram is a lock-free log2-bucketed histogram. The zero value is
// ready to use and safe for concurrent Observe/Snapshot.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64
}

// bucketFor maps a value to its log2 bucket index.
func bucketFor(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // v is in [2^(b-1), 2^b)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpper is the inclusive upper bound of bucket i in the recorded
// unit (nanoseconds for latencies). Bucket histBuckets-1 is unbounded;
// callers render it as +Inf.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveValue(d.Nanoseconds()) }

// ObserveValue records one raw value (a size, a count, a duration in ns).
func (h *Histogram) ObserveValue(v int64) {
	if !enabled.Load() {
		return
	}
	h.counts[bucketFor(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the current counts. Buckets above the highest non-empty
// one are omitted.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]uint64
	s := HistogramSnapshot{SumNs: h.sum.Load()}
	high := -1
	for i := range counts {
		counts[i] = h.counts[i].Load()
		s.Count += counts[i]
		if counts[i] > 0 {
			high = i
		}
	}
	for i := 0; i <= high; i++ {
		s.Buckets = append(s.Buckets, BucketCount{UpperNs: bucketUpper(i), Count: counts[i]})
	}
	return s
}

// BucketCount is one histogram bucket in a snapshot. UpperNs is the
// inclusive upper bound; the last bucket of a full histogram is unbounded
// and rendered as +Inf by the Prometheus writer.
type BucketCount struct {
	UpperNs int64  `json:"upper_ns"`
	Count   uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	SumNs   int64         `json:"sum_ns"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Mean returns the average recorded value, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// Quantile returns the upper bound of the bucket where the cumulative
// count first reaches q (0..1) of the total — a log2-resolution estimate.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return b.UpperNs
		}
	}
	return s.Buckets[len(s.Buckets)-1].UpperNs
}

// SlowQuery is one slow-query log entry.
type SlowQuery struct {
	Time       time.Time `json:"time"`
	User       string    `json:"user"`
	SQL        string    `json:"sql"`
	DurationNs int64     `json:"duration_ns"`
	Rows       int       `json:"rows"`
	Retries    int64     `json:"retries"`
	Plan       string    `json:"plan,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of statements that exceeded the
// threshold. Recording takes a short mutex — acceptable because by
// definition only slow statements reach it.
type SlowLog struct {
	thresholdNs atomic.Int64

	mu    sync.Mutex
	ring  []SlowQuery
	next  int   // ring index of the next write
	total int64 // entries ever recorded (≥ len of the ring)
}

// NewSlowLog returns a log holding the last capacity entries, recording
// statements at or above threshold.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &SlowLog{ring: make([]SlowQuery, 0, capacity)}
	l.thresholdNs.Store(threshold.Nanoseconds())
	return l
}

// Threshold returns the current recording threshold.
func (l *SlowLog) Threshold() time.Duration { return time.Duration(l.thresholdNs.Load()) }

// SetThreshold changes the recording threshold. Zero records everything;
// a negative threshold disables the log.
func (l *SlowLog) SetThreshold(d time.Duration) { l.thresholdNs.Store(d.Nanoseconds()) }

// ShouldRecord reports whether a statement of duration d qualifies,
// without taking the lock — the hot-path guard.
func (l *SlowLog) ShouldRecord(d time.Duration) bool {
	t := l.thresholdNs.Load()
	return t >= 0 && d.Nanoseconds() >= t
}

// Record appends one entry, evicting the oldest at capacity.
func (l *SlowLog) Record(q SlowQuery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, q)
	} else {
		l.ring[l.next] = q
		l.next = (l.next + 1) % cap(l.ring)
	}
	l.total++
}

// Entries returns the retained entries in chronological order.
func (l *SlowLog) Entries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, len(l.ring))
	if len(l.ring) == cap(l.ring) {
		out = append(out, l.ring[l.next:]...)
		out = append(out, l.ring[:l.next]...)
	} else {
		out = append(out, l.ring...)
	}
	return out
}

// Total returns how many entries were ever recorded, including evicted.
func (l *SlowLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot is the full engine stats surface: everything the engine can
// report, in one struct, JSON-serializable and renderable as Prometheus
// text exposition.
type Snapshot struct {
	Enabled bool `json:"enabled"`

	// Statements maps statement kind (select, insert, update, delete,
	// ddl, txn, other) to its latency histogram.
	Statements     map[string]HistogramSnapshot `json:"statements"`
	RowsScanned    int64                        `json:"rows_scanned"`
	DMLRowsVisited int64                        `json:"dml_rows_visited"`
	RowsReturned   int64                        `json:"rows_returned"`

	PlanCache  CacheStats      `json:"plan_cache"`
	WAL        WALStats        `json:"wal"`
	MVCC       MVCCStats       `json:"mvcc"`
	Locks      LockStats       `json:"locks"`
	Parallel   ParallelStats   `json:"parallel"`
	Checkpoint CheckpointStats `json:"checkpoint"`
	Health     HealthStats     `json:"health"`
	SlowLog    SlowLogStats    `json:"slow_log"`
}

// CacheStats describes the plan cache.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
}

// WALStats describes the durability subsystem. The counter fields mirror
// the engine's DurabilityStats; the histograms are new.
type WALStats struct {
	Durable      bool              `json:"durable"`
	Mode         string            `json:"mode,omitempty"`
	Commits      int64             `json:"commits"`
	Records      int64             `json:"records"`
	Fsyncs       int64             `json:"fsyncs"`
	GroupFlushes int64             `json:"group_flushes"`
	WALBytes     int64             `json:"wal_bytes"`
	WALSize      int64             `json:"wal_size"`
	Segment      int64             `json:"segment"`
	LSN          int64             `json:"lsn"`
	Checkpoints  int64             `json:"checkpoints"`
	AppendNs     HistogramSnapshot `json:"append_ns"`
	FsyncNs      HistogramSnapshot `json:"fsync_ns"`
	BatchCommits HistogramSnapshot `json:"batch_commits"`
}

// MVCCStats describes transaction concurrency health.
type MVCCStats struct {
	Conflicts    int64 `json:"conflicts"`
	Aborts       int64 `json:"aborts"`
	Retries      int64 `json:"retries"`
	OpenTxns     int   `json:"open_txns"`
	GCHorizonLag int64 `json:"gc_horizon_lag"`
}

// LockStats describes the per-table lock manager.
type LockStats struct {
	TableAcquires        int64             `json:"table_acquires"`
	GlobalAcquires       int64             `json:"global_acquires"`
	MaxConcurrentWriters int64             `json:"max_concurrent_writers"`
	WaitNs               HistogramSnapshot `json:"wait_ns"`
}

// ParallelStats describes morsel-driven parallel execution.
type ParallelStats struct {
	Batches int64             `json:"batches"`
	Morsels int64             `json:"morsels"`
	Workers HistogramSnapshot `json:"workers"`
}

// CheckpointStats describes snapshot checkpoints.
type CheckpointStats struct {
	Count      int64             `json:"count"`
	DurationNs HistogramSnapshot `json:"duration_ns"`
}

// HealthStats folds degraded-mode state into the snapshot.
type HealthStats struct {
	Degraded          bool   `json:"degraded"`
	Reason            string `json:"reason,omitempty"`
	Transitions       int64  `json:"transitions"`
	LastCheckpointErr string `json:"last_checkpoint_err,omitempty"`
}

// SlowLogStats embeds the slow-query log in the snapshot.
type SlowLogStats struct {
	ThresholdNs int64       `json:"threshold_ns"`
	Total       int64       `json:"total"`
	Entries     []SlowQuery `json:"entries,omitempty"`
}
