package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentReaders exercises the shared-lock read path: many sessions
// issuing SELECTs at once, over tables, indexes, views, and subqueries.
// Run with -race; view scans in particular used to share one AST.
func TestConcurrentReaders(t *testing.T) {
	e := NewEngine("conc")
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, grp INT, val REAL)`)
	root.MustExec(`CREATE INDEX idx_grp ON t (grp)`)
	for i := 0; i < 200; i++ {
		root.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %f)", i, i%10, float64(i)))
	}
	root.MustExec(`CREATE VIEW low AS SELECT id, val FROM t WHERE grp < 3`)

	queries := []string{
		"SELECT COUNT(*) FROM t WHERE grp = 4",
		"SELECT id FROM t WHERE id = 17",
		"SELECT COUNT(*) FROM low",
		"SELECT grp, AVG(val) FROM t GROUP BY grp ORDER BY grp",
		"SELECT COUNT(*) FROM t WHERE val > (SELECT AVG(val) FROM t)",
		"EXPLAIN SELECT id FROM t WHERE grp = 2",
	}

	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession("root")
			for i := 0; i < rounds; i++ {
				q := queries[(w+i)%len(queries)]
				if _, err := s.Exec(q); err != nil {
					errs <- fmt.Errorf("worker %d: %q: %v", w, q, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentMixedTraffic runs parallel sessions issuing mixed
// SELECT/INSERT traffic and asserts the final state is exactly the sum of
// all writes, and that every read observed a consistent prefix.
func TestConcurrentMixedTraffic(t *testing.T) {
	e := NewEngine("mixed")
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE log (id INT PRIMARY KEY, writer INT, seq INT)`)
	root.MustExec(`CREATE INDEX idx_writer ON log (writer)`)

	const writers = 4
	const readers = 6
	const perWriter = 100
	var wg sync.WaitGroup
	var bad atomic.Int64
	errs := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession("root")
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO log VALUES (%d, %d, %d)", id, w, i)); err != nil {
					errs <- fmt.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := e.NewSession("root")
			prev := int64(-1)
			for i := 0; i < 80; i++ {
				res, err := s.Exec(fmt.Sprintf("SELECT COUNT(*) FROM log WHERE writer = %d", r%writers))
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
				n := res.Rows[0][0].I
				// Counts are monotone per writer: inserts only.
				if n < prev || n > perWriter {
					bad.Add(1)
				}
				prev = n
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if bad.Load() != 0 {
		t.Errorf("%d inconsistent reads observed", bad.Load())
	}
	total := root.MustExec("SELECT COUNT(*) FROM log").Rows[0][0].I
	if total != writers*perWriter {
		t.Fatalf("final count = %d, want %d", total, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		n := root.MustExec(fmt.Sprintf("SELECT COUNT(*) FROM log WHERE writer = %d", w)).Rows[0][0].I
		if n != perWriter {
			t.Fatalf("writer %d persisted %d rows, want %d", w, n, perWriter)
		}
	}
}

// TestConcurrentTransactions mixes transactional writers (some rolling
// back) with readers; committed effects must all land, rolled-back ones
// must not.
func TestConcurrentTransactions(t *testing.T) {
	e := NewEngine("txn")
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE acct (id INT PRIMARY KEY, bal INT)`)
	root.MustExec(`INSERT INTO acct VALUES (1, 1000), (2, 1000)`)

	const movers = 4
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, movers+1)
	for m := 0; m < movers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			s := e.NewSession("root")
			for i := 0; i < rounds; i++ {
				// Concurrent movers write the same two rows, so under
				// snapshot isolation a round can abort with a retryable
				// serialization error; retry the whole transaction (the
				// documented write-conflict contract).
			retry:
				for {
					script := []string{
						"BEGIN",
						"UPDATE acct SET bal = bal - 10 WHERE id = 1",
						"UPDATE acct SET bal = bal + 10 WHERE id = 2",
					}
					for _, q := range script {
						if _, err := s.Exec(q); err != nil {
							if IsRetryable(err) {
								if _, rerr := s.Exec("ROLLBACK"); rerr != nil {
									errs <- fmt.Errorf("mover %d: rollback after conflict: %v", m, rerr)
									return
								}
								continue retry
							}
							errs <- fmt.Errorf("mover %d: %q: %v", m, q, err)
							return
						}
					}
					final := "COMMIT"
					if i%2 == 1 {
						final = "ROLLBACK"
					}
					if _, err := s.Exec(final); err != nil {
						errs <- fmt.Errorf("mover %d: %s: %v", m, final, err)
						return
					}
					break
				}
			}
		}(m)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := e.NewSession("root")
		for i := 0; i < 60; i++ {
			res, err := s.Exec("SELECT SUM(bal) FROM acct")
			if err != nil {
				errs <- fmt.Errorf("auditor: %v", err)
				return
			}
			// Under snapshot isolation the auditor's statement snapshot
			// sees both legs of every transfer or neither: the total is
			// invariantly 2000. (Before MVCC a reader could legally observe
			// the mid-transfer state, total-10.)
			got := res.Rows[0][0].I
			if got != 2000 {
				errs <- fmt.Errorf("auditor saw torn total %d, want 2000", got)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	b1 := root.MustExec("SELECT bal FROM acct WHERE id = 1").Rows[0][0].I
	b2 := root.MustExec("SELECT bal FROM acct WHERE id = 2").Rows[0][0].I
	// Rounds alternate commit/rollback starting with commit; with rounds
	// odd, commit rounds = ceil(rounds/2).
	committed := int64(movers*((rounds+1)/2)) * 10
	if b1 != 1000-committed || b2 != 1000+committed {
		t.Fatalf("balances (%d, %d) do not reflect %d committed transfers", b1, b2, committed)
	}
}

// TestConcurrentCachedSelectWithDML hammers the plan cache from parallel
// readers (all sharing a handful of hot SQL strings, so most executions are
// cache hits under the read lock) while writers run planner-driven
// UPDATE/DELETE/INSERT and a DDL goroutine repeatedly bumps the catalog
// version, invalidating every cached plan mid-flight. Run with -race.
func TestConcurrentCachedSelectWithDML(t *testing.T) {
	e := NewEngine("cachedmix")
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, grp INT, val INT)`)
	root.MustExec(`CREATE INDEX idx_grp ON t (grp)`)
	for i := 0; i < 300; i++ {
		root.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, 0)", i, i%10))
	}

	hot := []string{
		"SELECT COUNT(*) FROM t WHERE grp = 4",
		"SELECT COUNT(*) FROM t",
		"SELECT val FROM t WHERE id = 17",
	}

	const readers = 6
	const writers = 3
	const rounds = 60
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := e.NewSession("root")
			for i := 0; i < rounds; i++ {
				q := hot[(r+i)%len(hot)]
				res, err := s.Exec(q)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %q: %v", r, q, err)
					return
				}
				if len(res.Rows) == 0 {
					errs <- fmt.Errorf("reader %d: %q returned no rows", r, q)
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := e.NewSession("root")
			for i := 0; i < rounds; i++ {
				// Fixed SQL so the write plans are cache hits too.
				script := []string{
					"UPDATE t SET val = val + 1 WHERE grp = 4",
					fmt.Sprintf("DELETE FROM t WHERE id = %d", 1000+w*rounds+i),
					fmt.Sprintf("INSERT INTO t VALUES (%d, 4, 0)", 1000+w*rounds+i),
				}
				for _, q := range script {
					if _, err := s.Exec(q); err != nil {
						errs <- fmt.Errorf("writer %d: %q: %v", w, q, err)
						return
					}
				}
			}
		}(w)
	}
	// The invalidator: DDL churn bumps the catalog version so readers and
	// writers constantly fall off the cache and re-plan.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := e.NewSession("root")
		for i := 0; i < 20; i++ {
			if _, err := s.Exec(fmt.Sprintf("CREATE TABLE churn%d (x INT)", i)); err != nil {
				errs <- fmt.Errorf("ddl: %v", err)
				return
			}
			if _, err := s.Exec(fmt.Sprintf("DROP TABLE churn%d", i)); err != nil {
				errs <- fmt.Errorf("ddl: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every writer inserts one extra grp-4 row per round (delete precedes
	// its own insert, so all survive).
	base := int64(30) // 300 seeded rows, ids ending in grp 4
	want := base + writers*rounds
	if n := root.MustExec("SELECT COUNT(*) FROM t WHERE grp = 4").Rows[0][0].I; n != want {
		t.Fatalf("grp-4 rows = %d, want %d", n, want)
	}
	hits, misses := e.PlanCacheStats()
	if hits == 0 {
		t.Fatalf("expected cache hits under hot traffic (hits=%d misses=%d)", hits, misses)
	}
}

// TestConcurrentDirectGrants mutates privileges through Engine.Grants()
// (no engine lock, the documented fixture/toolkit path) while sessions
// execute statements whose privilege checks read the same store; Grants
// synchronizes itself. Run with -race.
func TestConcurrentDirectGrants(t *testing.T) {
	e := NewEngine("grants")
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, x INT)`)
	root.MustExec(`INSERT INTO t VALUES (1, 10), (2, 20)`)

	var wg sync.WaitGroup
	errs := make(chan error, 5)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := e.NewSession("alice")
			for i := 0; i < 100; i++ {
				_, err := s.Exec("SELECT COUNT(*) FROM t")
				// Denials are expected mid-revoke; anything else is not.
				var pe *PermissionError
				if err != nil && !errors.As(err, &pe) {
					errs <- fmt.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			e.Grants().Grant("alice", ActionSelect, "t")
			e.Grants().GrantColumns("alice", ActionSelect, "t", []string{"id", "x"})
			e.Grants().Revoke("alice", ActionSelect, "t")
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSharedStmtConcurrentExec executes one parsed statement (with a
// subquery) from many sessions at once. Statement trees must be immutable
// during execution: subqueries run through Env.sess, not closures written
// into the shared AST.
func TestSharedStmtConcurrentExec(t *testing.T) {
	e := NewEngine("shared")
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, grp INT)`)
	for i := 0; i < 50; i++ {
		root.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d)", i, i%5))
	}
	stmt, err := Parse("SELECT COUNT(*) FROM t WHERE grp IN (SELECT grp FROM t WHERE id < 10)")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewSession("root")
			for i := 0; i < 30; i++ {
				r, err := s.ExecStmt(stmt)
				if err != nil {
					errs <- err
					return
				}
				if r.Rows[0][0].I != 50 {
					errs <- fmt.Errorf("got %d rows, want 50", r.Rows[0][0].I)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
