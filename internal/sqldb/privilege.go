package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Action is a database privilege action, mirroring PostgreSQL's table
// privileges plus DDL actions.
type Action uint8

// The privilege actions.
const (
	ActionNone Action = iota
	ActionSelect
	ActionInsert
	ActionUpdate
	ActionDelete
	ActionCreate
	ActionDrop
	ActionAlter
	ActionGrant
)

// AllActions lists every grantable action.
var AllActions = []Action{
	ActionSelect, ActionInsert, ActionUpdate, ActionDelete,
	ActionCreate, ActionDrop, ActionAlter,
}

// String returns the SQL keyword for the action.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "NONE"
	case ActionSelect:
		return "SELECT"
	case ActionInsert:
		return "INSERT"
	case ActionUpdate:
		return "UPDATE"
	case ActionDelete:
		return "DELETE"
	case ActionCreate:
		return "CREATE"
	case ActionDrop:
		return "DROP"
	case ActionAlter:
		return "ALTER"
	case ActionGrant:
		return "GRANT"
	}
	return fmt.Sprintf("Action(%d)", uint8(a))
}

// ParseAction converts a SQL keyword to an Action.
func ParseAction(s string) (Action, bool) {
	return actionFromKeyword(strings.ToUpper(strings.TrimSpace(s)))
}

type actionSet uint16

func (s actionSet) has(a Action) bool { return s&(1<<a) != 0 }
func (s *actionSet) add(a Action)     { *s |= 1 << a }
func (s *actionSet) remove(a Action)  { *s &^= 1 << a }

// Grants is the privilege store: per-user action sets per object, optional
// column restrictions, and superuser flags. The object "*" stands for all
// tables (and for CREATE, the database itself).
type Grants struct {
	// mu guards the maps. Grants may be mutated directly through
	// Engine.Grants() (fixtures, toolkits) without the engine lock, while
	// sessions holding only the engine read lock check privileges — so the
	// store synchronizes itself.
	mu    sync.RWMutex
	super map[string]bool                 // user -> superuser
	objs  map[string]map[string]actionSet // user -> object(lower) -> actions
	// cols restricts an (user, object, action) grant to named columns.
	// Absent entry means all columns.
	cols map[string]map[string]map[Action]map[string]bool
	// version is the engine's catalog version counter; every privilege
	// mutation bumps it so cached plans (whose privilege checks were made
	// under the old grants) are re-validated.
	version *atomic.Uint64
	// logger, when set (durable engines), receives every privilege mutation
	// so it can be appended to the WAL. It covers both GRANT/REVOKE SQL and
	// direct API use — there may be no statement text to log. Atomic because
	// grants are mutated without the engine lock.
	logger atomic.Pointer[grantLogger]
}

// grantLogger wraps the WAL append callback for privilege mutations.
type grantLogger struct{ fn func(grantChange) }

// log fires the change hook outside the store's lock.
func (g *Grants) log(ch grantChange) {
	if l := g.logger.Load(); l != nil {
		l.fn(ch)
	}
}

func newGrants(version *atomic.Uint64) *Grants {
	return &Grants{
		super:   map[string]bool{"root": true},
		objs:    map[string]map[string]actionSet{},
		cols:    map[string]map[string]map[Action]map[string]bool{},
		version: version,
	}
}

func (g *Grants) bump() {
	if g.version != nil {
		g.version.Add(1)
	}
}

// SetSuperuser marks or unmarks a user as superuser.
func (g *Grants) SetSuperuser(user string, super bool) {
	g.mu.Lock()
	g.super[strings.ToLower(user)] = super
	g.mu.Unlock()
	g.bump()
	g.log(grantChange{Op: grantOpSuper, User: user, Super: super})
}

// IsSuperuser reports whether the user bypasses privilege checks.
func (g *Grants) IsSuperuser(user string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.super[strings.ToLower(user)]
}

// Grant adds an action on an object ("*" = all tables) for a user.
func (g *Grants) Grant(user string, action Action, object string) {
	g.mu.Lock()
	g.grantLocked(user, action, object)
	g.mu.Unlock()
	g.bump()
	g.log(grantChange{Op: grantOpGrant, User: user, Action: action, Object: object})
}

func (g *Grants) grantLocked(user string, action Action, object string) {
	u, o := strings.ToLower(user), strings.ToLower(object)
	if g.objs[u] == nil {
		g.objs[u] = map[string]actionSet{}
	}
	set := g.objs[u][o]
	set.add(action)
	g.objs[u][o] = set
}

// GrantAll grants every action on an object to a user.
func (g *Grants) GrantAll(user, object string) {
	for _, a := range AllActions {
		g.Grant(user, a, object)
	}
}

// Revoke removes an action on an object from a user (and drops any column
// restriction bound to it).
func (g *Grants) Revoke(user string, action Action, object string) {
	g.mu.Lock()
	u, o := strings.ToLower(user), strings.ToLower(object)
	if g.objs[u] != nil {
		set := g.objs[u][o]
		set.remove(action)
		if set == 0 {
			delete(g.objs[u], o)
		} else {
			g.objs[u][o] = set
		}
		if g.cols[u] != nil && g.cols[u][o] != nil {
			delete(g.cols[u][o], action)
		}
	}
	g.mu.Unlock()
	g.bump()
	g.log(grantChange{Op: grantOpRevoke, User: user, Action: action, Object: object})
}

// RevokeAll removes every action on an object from a user.
func (g *Grants) RevokeAll(user, object string) {
	for _, a := range AllActions {
		g.Revoke(user, a, object)
	}
}

// GrantColumns grants an action on an object restricted to the given
// columns (PostgreSQL column privileges).
func (g *Grants) GrantColumns(user string, action Action, object string, columns []string) {
	g.mu.Lock()
	g.grantLocked(user, action, object)
	u, o := strings.ToLower(user), strings.ToLower(object)
	if g.cols[u] == nil {
		g.cols[u] = map[string]map[Action]map[string]bool{}
	}
	if g.cols[u][o] == nil {
		g.cols[u][o] = map[Action]map[string]bool{}
	}
	set := map[string]bool{}
	for _, c := range columns {
		set[strings.ToLower(c)] = true
	}
	g.cols[u][o][action] = set
	g.mu.Unlock()
	g.bump()
	g.log(grantChange{Op: grantOpGrantCols, User: user, Action: action, Object: object, Columns: columns})
}

// Has reports whether the user may perform action on object. Superusers may
// do anything; "*" grants cover every object.
func (g *Grants) Has(user string, action Action, object string) bool {
	if action == ActionNone {
		return true
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	u, o := strings.ToLower(user), strings.ToLower(object)
	if g.super[u] {
		return true
	}
	if m := g.objs[u]; m != nil {
		if m[o].has(action) || m["*"].has(action) {
			return true
		}
	}
	return false
}

// AllowedColumns returns the column restriction for (user, action, object):
// nil means all columns are allowed (or no grant at all — pair with Has).
// The returned map is never mutated in place (GrantColumns publishes a
// fresh map), so callers may read it after the lock is released.
func (g *Grants) AllowedColumns(user string, action Action, object string) map[string]bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	u, o := strings.ToLower(user), strings.ToLower(object)
	if g.super[u] {
		return nil
	}
	if g.cols[u] == nil || g.cols[u][o] == nil {
		return nil
	}
	return g.cols[u][o][action]
}

// ObjectActions returns the actions a user holds on a specific object,
// including via "*" grants, sorted for stable output.
func (g *Grants) ObjectActions(user, object string) []Action {
	var out []Action
	for _, a := range AllActions {
		if g.Has(user, a, object) {
			out = append(out, a)
		}
	}
	return out
}

// HasAny reports whether the user holds at least one action on the object.
func (g *Grants) HasAny(user, object string) bool {
	return len(g.ObjectActions(user, object)) > 0
}

// dump serializes the whole privilege store as a sequence of idempotent
// changes, sorted for deterministic snapshots. Applying them in order to an
// empty store reproduces the current state.
func (g *Grants) dump() []grantChange {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []grantChange

	supers := make([]string, 0, len(g.super))
	for u := range g.super {
		supers = append(supers, u)
	}
	sort.Strings(supers)
	for _, u := range supers {
		// "root" is implicitly superuser in a fresh store, but an explicit
		// record keeps SetSuperuser("root", false) restorable.
		out = append(out, grantChange{Op: grantOpSuper, User: u, Super: g.super[u]})
	}

	users := make([]string, 0, len(g.objs))
	for u := range g.objs {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		objs := make([]string, 0, len(g.objs[u]))
		for o := range g.objs[u] {
			objs = append(objs, o)
		}
		sort.Strings(objs)
		for _, o := range objs {
			set := g.objs[u][o]
			for a := ActionSelect; a <= ActionGrant; a++ {
				if !set.has(a) {
					continue
				}
				// The presence of the restriction map is what matters, not
				// whether it names any columns: an empty restriction means
				// "no columns allowed", and dumping it as an unrestricted
				// grant would widen privileges across a restart.
				var restrict map[string]bool
				if g.cols[u] != nil && g.cols[u][o] != nil {
					restrict = g.cols[u][o][a]
				}
				if restrict != nil {
					cols := make([]string, 0, len(restrict))
					for c := range restrict {
						cols = append(cols, c)
					}
					sort.Strings(cols)
					out = append(out, grantChange{Op: grantOpGrantCols, User: u, Action: a, Object: o, Columns: cols})
				} else {
					out = append(out, grantChange{Op: grantOpGrant, User: u, Action: a, Object: o})
				}
			}
		}
	}
	return out
}

// apply replays one dumped or WAL-logged privilege change through the
// normal mutators (recovery runs with no logger attached, so nothing is
// re-logged).
func (g *Grants) apply(ch grantChange) {
	switch ch.Op {
	case grantOpSuper:
		g.SetSuperuser(ch.User, ch.Super)
	case grantOpGrant:
		g.Grant(ch.User, ch.Action, ch.Object)
	case grantOpRevoke:
		g.Revoke(ch.User, ch.Action, ch.Object)
	case grantOpGrantCols:
		g.GrantColumns(ch.User, ch.Action, ch.Object, ch.Columns)
	}
}

// ActionStrings formats a list of actions, or "ALL" when the list covers
// every grantable action.
func ActionStrings(actions []Action) string {
	if len(actions) == len(AllActions) {
		return "ALL"
	}
	parts := make([]string, len(actions))
	for i, a := range actions {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}
