package sqldb

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Morsel-driven parallel execution.
//
// Read-side operators (seq scan + filter, projection, hash-join build and
// probe, GROUP BY / DISTINCT key builds) partition their input row slice
// into fixed-size morsels. Morsels are handed out dynamically through an
// atomic counter to a small set of workers drawn from a bounded per-engine
// pool; the calling goroutine always participates, so execution makes
// progress even when the pool is exhausted (and degenerates to the batched
// single-goroutine path at workers=1). Each morsel writes into its own
// output buffer; buffers are concatenated in morsel order at the end, which
// keeps row order — and therefore results — identical to the sequential
// executor.
//
// Inside a worker, expressions are evaluated against a *bound* copy of the
// tree (see bindExpr) in which every column reference has been resolved to
// a positional index at bind time. That removes the per-row name lookup and
// the per-row Env allocation of the row-at-a-time path, which is why the
// batched path is faster even with a single worker.

const (
	// morselSize is the number of rows handed to a worker at a time.
	morselSize = 1024
	// defaultParallelThreshold is the minimum input row count before the
	// planner considers a parallel scan worthwhile.
	defaultParallelThreshold = 2048
)

// parallelConfig holds the engine's worker pool. slots has capacity
// workers-1: every statement brings its own goroutine and may borrow up to
// workers-1 extras, so total in-flight workers per statement never exceed
// the configured count while concurrent statements share the same pool.
type parallelConfig struct {
	mu        sync.Mutex
	workers   int
	threshold int
	slots     chan struct{}
}

// SetParallelism configures batched/parallel query execution: workers is
// the maximum number of goroutines one operator may use (<=1 keeps the
// batched path but runs it inline), threshold is the minimum row count
// before the planner parallelizes a scan. Zero values select the defaults
// (GOMAXPROCS workers, 2048-row threshold).
func (e *Engine) SetParallelism(workers, threshold int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if threshold <= 0 {
		threshold = defaultParallelThreshold
	}
	p := &e.par
	p.mu.Lock()
	defer p.mu.Unlock()
	p.workers = workers
	p.threshold = threshold
	p.slots = nil
	if workers > 1 {
		p.slots = make(chan struct{}, workers-1)
	}
}

// parallelism returns the current worker count, row threshold, and slot
// pool, applying defaults on first use.
func (e *Engine) parallelism() (workers, threshold int, slots chan struct{}) {
	p := &e.par
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.workers == 0 {
		p.workers = runtime.GOMAXPROCS(0)
		p.threshold = defaultParallelThreshold
		if p.workers > 1 {
			p.slots = make(chan struct{}, p.workers-1)
		}
	}
	return p.workers, p.threshold, p.slots
}

// parallelEligible reports whether this session may run a batched/parallel
// operator over n input rows. Parallel operators are disabled inside
// correlated contexts (outer != nil: subqueries run on the statement's
// goroutine and may reference outer columns) and for sessions that forced
// them off.
func (s *Session) parallelEligible(n int, outer *Env) (workers int, slots chan struct{}, ok bool) {
	if outer != nil || s.forceSeqScan || s.noParallel {
		return 0, nil, false
	}
	w, thr, sl := s.engine.parallelism()
	if n < thr {
		return 0, nil, false
	}
	m := &s.engine.metrics
	m.parBatches.Add(1)
	m.parMorsels.Add(int64(chunkCount(n, morselSize)))
	m.parWorkers.ObserveValue(int64(w))
	return w, sl, true
}

// chunkCount returns how many chunk-sized pieces cover n items.
func chunkCount(n, chunk int) int {
	return (n + chunk - 1) / chunk
}

// runChunked partitions [0, n) into chunk-sized pieces and calls fn once per
// piece, handing pieces out dynamically. Up to workers-1 extra goroutines
// are claimed from the slot pool without blocking; the caller always
// participates. fn must be safe to call concurrently for distinct indexes.
func runChunked(slots chan struct{}, workers, n, chunk int, fn func(idx, start, end int)) {
	nc := chunkCount(n, chunk)
	if nc == 0 {
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= nc {
				return
			}
			start := c * chunk
			end := start + chunk
			if end > n {
				end = n
			}
			fn(c, start, end)
		}
	}
	if workers > nc {
		workers = nc
	}
	var wg sync.WaitGroup
	if workers > 1 && slots != nil {
		for i := 0; i < workers-1; i++ {
			select {
			case slots <- struct{}{}:
			default:
				i = workers // pool exhausted; run with what we have
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				work()
			}()
		}
	}
	work()
	wg.Wait()
}

// firstError returns the error from the lowest-indexed chunk, matching the
// first error the sequential executor would have reported.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// boundColRef is a column reference resolved to a positional index at bind
// time. Eval is a slice load — no name lookup, no allocation.
type boundColRef struct {
	idx  int
	orig *ColumnRef
}

func (b *boundColRef) Eval(env *Env) (Value, error) {
	return env.vals[b.idx], nil
}

func (b *boundColRef) String() string { return b.orig.String() }

// resolveEnvCol mirrors Env.Lookup's resolution rules against a fixed
// column layout: qualified references take the first matching column;
// unqualified references must be unambiguous. Returns false whenever the
// sequential path would consult the outer env or report an error, so the
// caller falls back and semantics stay identical.
func resolveEnvCol(c *ColumnRef, cols []envCol) (int, bool) {
	table := strings.ToLower(c.Table)
	name := strings.ToLower(c.Name)
	idx := -1
	for i := range cols {
		if cols[i].name != name {
			continue
		}
		if table != "" && cols[i].table != table {
			continue
		}
		if idx >= 0 {
			if table == "" {
				return 0, false // ambiguous
			}
			continue // qualified: first match wins
		}
		idx = i
	}
	if idx < 0 {
		return 0, false // unknown here; may exist in an outer env
	}
	return idx, true
}

// bindExpr clones e with every column reference resolved to a positional
// index for the given column layout. It refuses anything that is not safe
// or not meaningful to evaluate concurrently: subqueries (they execute
// through the session), aggregate calls (the per-group value map is keyed
// by the original node pointer), and references it cannot resolve locally.
// ok=false means the caller must use the sequential path.
func bindExpr(e Expr, cols []envCol) (Expr, bool) {
	switch x := e.(type) {
	case nil:
		return nil, true
	case *Literal:
		return x, true
	case *ColumnRef:
		idx, ok := resolveEnvCol(x, cols)
		if !ok {
			return nil, false
		}
		return &boundColRef{idx: idx, orig: x}, true
	case *BinaryExpr:
		l, ok := bindExpr(x.Left, cols)
		if !ok {
			return nil, false
		}
		r, ok := bindExpr(x.Right, cols)
		if !ok {
			return nil, false
		}
		return &BinaryExpr{Op: x.Op, Left: l, Right: r}, true
	case *UnaryExpr:
		op, ok := bindExpr(x.Operand, cols)
		if !ok {
			return nil, false
		}
		return &UnaryExpr{Op: x.Op, Operand: op}, true
	case *FuncExpr:
		if x.IsAggregate() {
			return nil, false
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			b, ok := bindExpr(a, cols)
			if !ok {
				return nil, false
			}
			args[i] = b
		}
		return &FuncExpr{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}, true
	case *InExpr:
		if x.Subquery != nil {
			return nil, false
		}
		op, ok := bindExpr(x.Operand, cols)
		if !ok {
			return nil, false
		}
		list := make([]Expr, len(x.List))
		for i, a := range x.List {
			b, ok := bindExpr(a, cols)
			if !ok {
				return nil, false
			}
			list[i] = b
		}
		return &InExpr{Operand: op, List: list, Not: x.Not}, true
	case *BetweenExpr:
		op, ok := bindExpr(x.Operand, cols)
		if !ok {
			return nil, false
		}
		lo, ok := bindExpr(x.Low, cols)
		if !ok {
			return nil, false
		}
		hi, ok := bindExpr(x.High, cols)
		if !ok {
			return nil, false
		}
		return &BetweenExpr{Operand: op, Low: lo, High: hi, Not: x.Not}, true
	case *LikeExpr:
		op, ok := bindExpr(x.Operand, cols)
		if !ok {
			return nil, false
		}
		pat, ok := bindExpr(x.Pattern, cols)
		if !ok {
			return nil, false
		}
		return &LikeExpr{Operand: op, Pattern: pat, Not: x.Not}, true
	case *IsNullExpr:
		op, ok := bindExpr(x.Operand, cols)
		if !ok {
			return nil, false
		}
		return &IsNullExpr{Operand: op, Not: x.Not}, true
	case *CaseExpr:
		out := &CaseExpr{Whens: make([]CaseWhen, len(x.Whens))}
		for i, w := range x.Whens {
			cond, ok := bindExpr(w.Cond, cols)
			if !ok {
				return nil, false
			}
			res, ok := bindExpr(w.Result, cols)
			if !ok {
				return nil, false
			}
			out.Whens[i] = CaseWhen{Cond: cond, Result: res}
		}
		els, ok := bindExpr(x.Else, cols)
		if !ok {
			return nil, false
		}
		out.Else = els
		return out, true
	}
	// SubqueryExpr and anything this function does not know about.
	return nil, false
}

// parScanFilter is the fused parallel table scan: morsels of the heap are
// visibility-checked against the statement snapshot and, when cond is
// non-nil, filtered in the same pass. Returns handled=false when the scan
// cannot run batched (view target, unbindable predicate), in which case the
// caller uses the sequential path.
func (s *Session) parScanFilter(scan *SeqScanNode, cond Expr) (*rowSet, bool, error) {
	if s.forceSeqScan || s.noParallel || scan.cols == nil {
		return nil, false, nil
	}
	t, ok := s.engine.Table(scan.Table)
	if !ok {
		return nil, false, nil
	}
	q := strings.ToLower(scan.Alias)
	if q == "" {
		q = strings.ToLower(scan.Table)
	}
	cols := make([]string, 0, len(t.Columns))
	for _, c := range t.Columns {
		cols = append(cols, q+"."+strings.ToLower(c.Name))
	}
	envCols := toEnvCols(cols)
	var bound Expr
	if cond != nil {
		b, ok := bindExpr(cond, envCols)
		if !ok {
			return nil, false, nil
		}
		bound = b
	}
	workers, _, slots := s.engine.parallelism()
	//sqlvet:ignore mvccvisibility -- morsel fan-out snapshots the heap slice under the engine read lock and every row still goes through visible() below before it is emitted
	rows := t.rows
	sn := s.curView
	nm := chunkCount(len(rows), morselSize)
	type part struct {
		out     [][]Value
		visited int64
		err     error
	}
	parts := make([]part, nm)
	runChunked(slots, workers, len(rows), morselSize, func(m, start, end int) {
		p := &parts[m]
		buf := make([][]Value, 0, end-start)
		env := &Env{cols: envCols, sess: s}
		for _, entry := range rows[start:end] {
			v := entry.visible(sn)
			if v == nil {
				continue
			}
			p.visited++
			if bound != nil {
				env.vals = v.vals
				bv, err := bound.Eval(env)
				if err != nil {
					p.err = err
					p.out = buf
					return
				}
				if bv.IsNull() || !bv.Truthy() {
					continue
				}
			}
			buf = append(buf, v.vals)
		}
		p.out = buf
	})
	var visited, total int64
	var firstErr error
	for i := range parts {
		visited += parts[i].visited
		total += int64(len(parts[i].out))
		if firstErr == nil && parts[i].err != nil {
			firstErr = parts[i].err
		}
	}
	s.engine.scanRowsVisited.Add(visited)
	if firstErr != nil {
		return nil, true, firstErr
	}
	// Centralized preallocation: one exact-size result buffer built from the
	// per-morsel counts, instead of per-node growth.
	out := make([][]Value, 0, total)
	for i := range parts {
		out = append(out, parts[i].out...)
	}
	return &rowSet{cols: cols, rows: out}, true, nil
}

// appendKeySegment appends one value to a composite hash key using the same
// length-prefixed encoding as writeKeySegment, but into a reusable byte
// buffer so workers do not allocate a strings.Builder per row.
func appendKeySegment(buf []byte, v Value) []byte {
	k := v.Key()
	buf = strconv.AppendInt(buf, int64(len(k)), 10)
	buf = append(buf, ':')
	return append(buf, k...)
}

// parGroupKeys evaluates the bound GROUP BY expressions over every row in
// parallel and returns one composite key per row.
func parGroupKeys(exprs []Expr, envCols []envCol, rows [][]Value, workers int, slots chan struct{}) ([]string, error) {
	keys := make([]string, len(rows))
	errs := make([]error, chunkCount(len(rows), morselSize))
	runChunked(slots, workers, len(rows), morselSize, func(m, start, end int) {
		env := &Env{cols: envCols}
		var buf []byte
		for i := start; i < end; i++ {
			buf = buf[:0]
			env.vals = rows[i]
			for _, ge := range exprs {
				gv, err := ge.Eval(env)
				if err != nil {
					errs[m] = err
					return
				}
				buf = appendKeySegment(buf, gv)
			}
			keys[i] = string(buf)
		}
	})
	return keys, firstError(errs)
}

// parValueKeys computes rows[i][col].Key() for every row in parallel; the
// hash-join build and probe sides use it to precompute join keys.
func parValueKeys(rows [][]Value, col, workers int, slots chan struct{}) []string {
	keys := make([]string, len(rows))
	runChunked(slots, workers, len(rows), morselSize, func(_, start, end int) {
		for i := start; i < end; i++ {
			keys[i] = rows[i][col].Key()
		}
	})
	return keys
}

// parDistinctKeys computes the composite dedup key for every output row in
// parallel; the sequential dedup loop then consumes the precomputed keys.
func parDistinctKeys(rows [][]Value, workers int, slots chan struct{}) []string {
	keys := make([]string, len(rows))
	runChunked(slots, workers, len(rows), morselSize, func(_, start, end int) {
		var buf []byte
		for i := start; i < end; i++ {
			buf = buf[:0]
			for _, v := range rows[i] {
				buf = appendKeySegment(buf, v)
			}
			keys[i] = string(buf)
		}
	})
	return keys
}

// parGroupRows is the batched GROUP BY: group keys are computed over the
// input in parallel morsels, the hash build itself runs sequentially over
// the precomputed keys (preserving first-appearance group order and
// within-group row order), and per-group aggregates are then computed in
// parallel across groups. handled=false means some expression could not be
// bound (subquery, outer reference, nested aggregate) and the caller must
// run the row-at-a-time path.
func (s *Session) parGroupRows(st *SelectStmt, src *rowSet, outer *Env) ([]*groupResult, bool, error) {
	workers, slots, ok := s.parallelEligible(len(src.rows), outer)
	if !ok {
		return nil, false, nil
	}
	envCols := toEnvCols(src.cols)
	groupExprs := make([]Expr, len(st.GroupBy))
	for i, ge := range st.GroupBy {
		b, ok := bindExpr(ge, envCols)
		if !ok {
			return nil, false, nil
		}
		groupExprs[i] = b
	}
	aggNodes := collectAggNodes(st)
	boundArgs := make([]Expr, len(aggNodes))
	for i, f := range aggNodes {
		if f.Star {
			continue // COUNT(*): no argument to evaluate
		}
		if len(f.Args) != 1 {
			return nil, false, nil // sequential path reports the arity error
		}
		b, ok := bindExpr(f.Args[0], envCols)
		if !ok {
			return nil, false, nil
		}
		boundArgs[i] = b
	}

	keys, err := parGroupKeys(groupExprs, envCols, src.rows, workers, slots)
	if err != nil {
		return nil, true, err
	}
	keyed := map[string]*groupResult{}
	var order []*groupResult
	for i, vals := range src.rows {
		k := keys[i]
		g, ok := keyed[k]
		if !ok {
			g = &groupResult{firstRow: vals}
			keyed[k] = g
			order = append(order, g)
		}
		g.rows = append(g.rows, vals)
	}
	// The input has at least threshold (>0) rows here, so the empty-input
	// one-group fallback of the sequential path cannot apply.

	errs := make([]error, len(order))
	runChunked(slots, workers, len(order), 1, func(gi, _, _ int) {
		g := order[gi]
		g.agg = make(map[Expr]Value, len(aggNodes))
		env := &Env{cols: envCols}
		for i, f := range aggNodes {
			v, err := computeAggregateBound(f, boundArgs[i], env, g.rows)
			if err != nil {
				errs[gi] = err
				return
			}
			g.agg[f] = v
		}
	})
	if err := firstError(errs); err != nil {
		return nil, true, err
	}
	return order, true, nil
}

// computeAggregateBound is the batched counterpart of computeAggregate: the
// argument expression is already bound, and the env is reused across rows.
// Values are collected in within-group row order, so float SUM/AVG results
// are bit-identical to the sequential path.
func computeAggregateBound(f *FuncExpr, arg Expr, env *Env, rows [][]Value) (Value, error) {
	if f.Star {
		if f.Name != "COUNT" {
			return Value{}, fmt.Errorf("%s(*) is not supported", f.Name)
		}
		return NewInt(int64(len(rows))), nil
	}
	var vals []Value
	distinct := map[string]bool{}
	for _, row := range rows {
		env.vals = row
		v, err := arg.Eval(env)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if f.Distinct {
			k := v.Key()
			if distinct[k] {
				continue
			}
			distinct[k] = true
		}
		vals = append(vals, v)
	}
	return finishAggregate(f, vals)
}

// parProject is the batched projection: the select list is bound once
// (star items become positional copy lists) and evaluated over the filtered
// rows in parallel morsels. handled=false when an item cannot be bound or
// the row count is below the threshold; the caller then projects
// row-at-a-time.
func (s *Session) parProject(items []SelectItem, src *rowSet, outer *Env) ([]string, [][]Value, bool, error) {
	workers, slots, ok := s.parallelEligible(len(src.rows), outer)
	if !ok {
		return nil, nil, false, nil
	}
	envCols := toEnvCols(src.cols)
	type projItem struct {
		star  bool
		idxs  []int  // star: source positions to copy
		bound Expr   // non-star: bound expression
		name  string // non-star: output column name
	}
	plan := make([]projItem, len(items))
	width := 0
	for i, it := range items {
		if it.Star {
			var idxs []int
			for j, q := range src.cols {
				tbl, _ := splitQualified(q)
				if it.Table != "" && !strings.EqualFold(tbl, it.Table) {
					continue
				}
				idxs = append(idxs, j)
			}
			plan[i] = projItem{star: true, idxs: idxs}
			width += len(idxs)
			continue
		}
		b, ok := bindExpr(it.Expr, envCols)
		if !ok {
			return nil, nil, false, nil
		}
		plan[i] = projItem{bound: b, name: itemName(it)}
		width++
	}
	outCols, err := projectColsOnly(items, src.cols)
	if err != nil {
		return nil, nil, false, nil // let the sequential path report it
	}

	outRows := make([][]Value, len(src.rows))
	errs := make([]error, chunkCount(len(src.rows), morselSize))
	runChunked(slots, workers, len(src.rows), morselSize, func(m, start, end int) {
		env := &Env{cols: envCols}
		for i := start; i < end; i++ {
			vals := src.rows[i]
			env.vals = vals
			row := make([]Value, 0, width)
			for _, p := range plan {
				if p.star {
					for _, j := range p.idxs {
						row = append(row, vals[j])
					}
					continue
				}
				v, err := p.bound.Eval(env)
				if err != nil {
					errs[m] = err
					return
				}
				row = append(row, v)
			}
			outRows[i] = row
		}
	})
	if err := firstError(errs); err != nil {
		return nil, nil, true, err
	}
	return outCols, outRows, true, nil
}

// parHashJoin is the parallel equi-join: join keys for both sides are
// computed in morsels, the hash table is built sequentially from the
// precomputed build-side keys (preserving bucket order), and the probe side
// is scanned in morsels with per-morsel output buffers concatenated in
// morsel order. Row order matches the sequential hash join exactly.
func parHashJoin(out *rowSet, left, right *rowSet, li, ri, workers int, slots chan struct{}) *rowSet {
	rkeys := parValueKeys(right.rows, ri, workers, slots)
	ht := make(map[string][]int, len(right.rows))
	arena := make([]int, 0, len(right.rows))
	for idx := range right.rows {
		k := rkeys[idx]
		if b, hit := ht[k]; hit {
			ht[k] = append(b, idx)
		} else {
			arena = append(arena, idx)
			ht[k] = arena[len(arena)-1 : len(arena):len(arena)]
		}
	}
	lkeys := parValueKeys(left.rows, li, workers, slots)
	parts := make([][][]Value, chunkCount(len(left.rows), morselSize))
	runChunked(slots, workers, len(left.rows), morselSize, func(m, start, end int) {
		var buf [][]Value
		for i := start; i < end; i++ {
			lrow := left.rows[i]
			if lrow[li].IsNull() {
				continue
			}
			for _, idx := range ht[lkeys[i]] {
				rrow := right.rows[idx]
				combined := make([]Value, 0, len(lrow)+len(rrow))
				combined = append(combined, lrow...)
				combined = append(combined, rrow...)
				buf = append(buf, combined)
			}
		}
		parts[m] = buf
	})
	var total int
	for _, p := range parts {
		total += len(p)
	}
	out.rows = make([][]Value, 0, total)
	for _, p := range parts {
		out.rows = append(out.rows, p...)
	}
	return out
}
