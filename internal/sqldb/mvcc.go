package sqldb

import (
	"errors"
	"fmt"
	"strings"
)

// This file is the engine's multi-version concurrency control layer:
// snapshot views, row-version visibility, write-write conflict detection,
// and garbage collection of versions no active snapshot can see.
//
// Every row is a chain of rowVersions (newest first). A version carries the
// commit timestamp of the transaction that created it (xmin) and, once it is
// superseded or deleted, of the transaction that ended it (xmax). While the
// creating or deleting transaction is still open, the corresponding
// xminTxn/xmaxTxn pointer identifies it instead; commit replaces the pointer
// with the transaction's commit timestamp, rollback clears it. Readers never
// block on writers: they pick the version their snapshot can see and ignore
// everything newer or uncommitted.

// IsolationLevel selects how a transaction's read snapshot evolves.
type IsolationLevel uint8

const (
	// LevelSnapshot (the default; REPEATABLE READ / SNAPSHOT / SERIALIZABLE
	// in BEGIN syntax) fixes the read snapshot at BEGIN: every statement in
	// the transaction sees the same committed state, plus its own writes.
	LevelSnapshot IsolationLevel = iota
	// LevelReadCommitted refreshes the snapshot at each statement: a
	// statement sees everything committed before it started, like
	// PostgreSQL's READ COMMITTED (READ UNCOMMITTED is promoted to it).
	LevelReadCommitted
)

// String returns the SQL spelling of the level.
func (l IsolationLevel) String() string {
	if l == LevelReadCommitted {
		return "READ COMMITTED"
	}
	return "SNAPSHOT"
}

// ParseIsolationLevel maps BEGIN ISOLATION LEVEL spellings to a level.
func ParseIsolationLevel(s string) (IsolationLevel, bool) {
	switch strings.ToUpper(strings.Join(strings.Fields(s), " ")) {
	case "READ COMMITTED", "READ UNCOMMITTED":
		// READ UNCOMMITTED is promoted to READ COMMITTED, as in PostgreSQL:
		// the engine never exposes uncommitted data.
		return LevelReadCommitted, true
	case "REPEATABLE READ", "SNAPSHOT", "SERIALIZABLE":
		// SERIALIZABLE is accepted and runs at snapshot isolation (no
		// predicate locking; write skew is possible, as in pre-9.1 Postgres).
		return LevelSnapshot, true
	}
	return LevelSnapshot, false
}

// snapView is one consistent read view: versions committed at or before ts
// are visible, plus the uncommitted writes of txn (the viewer's own open
// transaction, nil outside one).
type snapView struct {
	ts  uint64
	txn *Txn
}

// tsLatest makes a view that sees every committed version. Write-path
// checks (constraints, FK lookups) use it: they must act on the latest
// committed state plus the writer's own changes, not the statement snapshot.
const tsLatest = ^uint64(0)

// latestView returns the write-path view for txn.
func latestView(txn *Txn) snapView { return snapView{ts: tsLatest, txn: txn} }

// visible returns the version of e that sn can see, or nil. Chains are
// newest-first, so the first version whose creation is visible decides.
func (e *rowEntry) visible(sn snapView) *rowVersion {
	for v := e.v; v != nil; v = v.prev {
		if v.xminTxn != nil {
			if v.xminTxn != sn.txn {
				continue // another transaction's uncommitted write
			}
		} else if v.xmin > sn.ts {
			continue // committed after the snapshot was taken
		}
		// Creation is visible; check the deletion side.
		if v.xmaxTxn != nil {
			if v.xmaxTxn == sn.txn {
				return nil // deleted by the viewer itself
			}
			return v // another transaction's uncommitted delete: still ours
		}
		if v.xmax != 0 && v.xmax <= sn.ts {
			return nil // deleted before the snapshot
		}
		return v
	}
	return nil
}

// ErrWriteConflict is the retryable-error sentinel: errors.Is(err,
// ErrWriteConflict) (or IsRetryable) identifies statements aborted by
// first-committer-wins conflict detection. The caller should ROLLBACK and
// retry the whole transaction.
var ErrWriteConflict = errors.New("could not serialize access due to concurrent update")

// SerializationError reports a write-write conflict under snapshot
// isolation: the row this transaction tried to write already has a newer
// version from a concurrent transaction (committed after this transaction's
// snapshot, or still uncommitted).
type SerializationError struct {
	Table string
}

// Error implements error.
func (e *SerializationError) Error() string {
	return fmt.Sprintf("could not serialize access due to concurrent update on table %q; retry the transaction", e.Table)
}

// Is makes errors.Is(err, ErrWriteConflict) true for SerializationErrors.
func (e *SerializationError) Is(target error) bool { return target == ErrWriteConflict }

// IsRetryable reports whether err is a failure the caller can resolve by
// retrying the transaction: a serialization conflict (retry immediately
// after rolling back) or a degraded-engine refusal (retry after the
// operator fixes the disk — the write was cleanly rejected, not torn).
func IsRetryable(err error) bool {
	return errors.Is(err, ErrWriteConflict) || errors.Is(err, ErrDegraded)
}

// checkWriteConflict enforces first-committer-wins before t mutates e: the
// chain head must be either this transaction's own version or a committed
// version visible to its snapshot. A head committed after the snapshot, or
// created/deleted by another open transaction, aborts the statement with a
// retryable SerializationError. Exactly one of two conflicting transactions
// fails: the first writer installs its version, the second sees it here.
func (s *Session) checkWriteConflict(t *Table, e *rowEntry) error {
	h := e.v
	if h == nil {
		return &SerializationError{Table: t.Name}
	}
	self := s.writerTxn()
	if h.xminTxn != nil && h.xminTxn != self {
		return &SerializationError{Table: t.Name}
	}
	if h.xmaxTxn != nil && h.xmaxTxn != self {
		return &SerializationError{Table: t.Name}
	}
	if h.xminTxn == nil && h.xmin > s.curView.ts {
		return &SerializationError{Table: t.Name}
	}
	if h.xmax != 0 {
		// Committed deletion. Invisible to our snapshot (or the row would
		// not have matched), so a concurrent transaction deleted it.
		return &SerializationError{Table: t.Name}
	}
	return nil
}

// --- active-snapshot registry (GC horizon) ---

// registerTxn records an open transaction's snapshot timestamp so garbage
// collection keeps every version it may still read.
func (e *Engine) registerTxn(tx *Txn) {
	e.snapMu.Lock()
	e.activeTxns[tx] = tx.snapTS
	e.snapMu.Unlock()
}

// unregisterTxn drops a finished transaction from the registry.
func (e *Engine) unregisterTxn(tx *Txn) {
	e.snapMu.Lock()
	delete(e.activeTxns, tx)
	e.snapMu.Unlock()
}

// openTxnCount reports how many transactions are open engine-wide.
func (e *Engine) openTxnCount() int {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	return len(e.activeTxns)
}

// gcHorizon returns the oldest timestamp any active snapshot may read.
// Versions whose lifetime ended at or before it are invisible to every
// current and future snapshot and can be reclaimed. In-flight read
// statements need no registration: they hold the engine read lock for their
// whole statement, and vacuum runs under the write lock.
func (e *Engine) gcHorizon() uint64 {
	min := e.lastCommitTS.Load()
	e.snapMu.Lock()
	for _, ts := range e.activeTxns {
		if ts < min {
			min = ts
		}
	}
	e.snapMu.Unlock()
	return min
}

// vacuum reclaims row versions no snapshot at or after horizon can see: it
// unlinks committed-dead rows, trims chain tails hidden behind a committed
// version every active snapshot already sees, and removes index entries
// whose values survive only in reclaimed versions. The caller holds the
// engine write lock.
func (t *Table) vacuum(horizon uint64) {
	if t.garbage == 0 {
		return
	}
	live := t.rows[:0]
	deadCnt := 0
	for _, e := range t.rows {
		switch {
		case e.v == nil:
			// Aborted insert, already unindexed by rollback.
			delete(t.byID, e.id)
			continue
		case e.v.xmaxTxn == nil && e.v.xmax != 0 && e.v.xmax <= horizon:
			// Committed-dead and invisible to every active snapshot.
			t.unindexChain(e)
			delete(t.byID, e.id)
			continue
		}
		// Trim the tail below the newest committed version the whole active
		// set can see: older versions are unreachable by any snapshot.
		for v := e.v; v != nil; v = v.prev {
			if v.xminTxn == nil && v.xmin <= horizon {
				if v.prev != nil {
					freed := v.prev
					v.prev = nil
					t.unindexFreed(e, freed)
				}
				break
			}
		}
		if e.v.xmaxTxn == nil && e.v.xmax != 0 {
			deadCnt++ // committed-dead but still visible to an old snapshot
		}
		live = append(live, e)
	}
	t.rows = live
	t.deadCnt = deadCnt
	t.garbage = 0
}

// unindexChain removes every index and PK entry contributed by any version
// of e (the whole row is being reclaimed). Removals are unconditional but
// idempotent: a second removal of the same (key, id) pair is a no-op.
func (t *Table) unindexChain(e *rowEntry) {
	for v := e.v; v != nil; v = v.prev {
		if t.pkMap != nil {
			t.removePK(t.pkKey(v.vals), e.id, v.vals)
		}
		for _, ix := range t.indexes {
			ix.remove(v.vals[ix.col], e.id)
		}
	}
}

// unindexFreed removes index entries for values that exist only in the freed
// tail (already unlinked from e), not in the surviving chain.
func (t *Table) unindexFreed(e *rowEntry, freed *rowVersion) {
	for v := freed; v != nil; v = v.prev {
		t.unindexVals(e, v.vals)
	}
}
