package sqldb

import (
	"errors"
	"strings"
	"testing"
)

// newTestEngine builds a small retail schema used across the tests.
func newTestEngine(t *testing.T) (*Engine, *Session) {
	t.Helper()
	e := NewEngine("testdb")
	root := e.NewSession("root")
	stmts := []string{
		`CREATE TABLE items (id INT PRIMARY KEY, name TEXT NOT NULL, price REAL, category TEXT)`,
		`CREATE TABLE sales (order_id INT PRIMARY KEY, item_id INT REFERENCES items(id), qty INT NOT NULL, amount REAL, day INT)`,
		`INSERT INTO items (id, name, price, category) VALUES
			(1, 'shirt', 19.99, 'clothes'),
			(2, 'jeans', 49.5, 'clothes'),
			(3, 'mug', 7.25, 'kitchen'),
			(4, 'pan', 24.0, 'kitchen'),
			(5, 'socks', 4.75, 'clothes')`,
		`INSERT INTO sales (order_id, item_id, qty, amount, day) VALUES
			(100, 1, 2, 39.98, 1),
			(101, 2, 1, 49.5, 1),
			(102, 3, 4, 29.0, 2),
			(103, 1, 1, 19.99, 2),
			(104, 5, 3, 14.25, 3)`,
	}
	for _, s := range stmts {
		if _, err := root.Exec(s); err != nil {
			t.Fatalf("setup %q: %v", s, err)
		}
	}
	return e, root
}

func mustQuery(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	r, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return r
}

func TestSelectAll(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT * FROM items`)
	if len(r.Rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(r.Rows))
	}
	if len(r.Columns) != 4 || r.Columns[0] != "id" {
		t.Fatalf("unexpected columns %v", r.Columns)
	}
}

func TestSelectWhere(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT name FROM items WHERE category = 'clothes' AND price < 20`)
	if len(r.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d: %v", len(r.Rows), r.Rows)
	}
}

func TestSelectOrderLimit(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT name, price FROM items ORDER BY price DESC LIMIT 2`)
	if len(r.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(r.Rows))
	}
	if r.Rows[0][0].S != "jeans" || r.Rows[1][0].S != "pan" {
		t.Fatalf("wrong order: %v", r.Rows)
	}
}

func TestSelectOrderByOrdinalAndAlias(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT name, price AS p FROM items ORDER BY 2 ASC LIMIT 1`)
	if r.Rows[0][0].S != "socks" {
		t.Fatalf("ordinal order wrong: %v", r.Rows)
	}
	r = mustQuery(t, s, `SELECT name, price AS p FROM items ORDER BY p ASC LIMIT 1`)
	if r.Rows[0][0].S != "socks" {
		t.Fatalf("alias order wrong: %v", r.Rows)
	}
}

func TestAggregates(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT COUNT(*), SUM(price), MIN(price), MAX(price), AVG(qty) FROM items, sales WHERE items.id = sales.item_id`)
	if len(r.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(r.Rows))
	}
	if r.Rows[0][0].I != 5 {
		t.Fatalf("COUNT(*) = %v, want 5", r.Rows[0][0])
	}
}

func TestGroupByHaving(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT category, COUNT(*) AS n, AVG(price) FROM items GROUP BY category HAVING COUNT(*) >= 2 ORDER BY n DESC`)
	if len(r.Rows) != 2 {
		t.Fatalf("want 2 groups, got %d: %v", len(r.Rows), r.Rows)
	}
	if r.Rows[0][0].S != "clothes" || r.Rows[0][1].I != 3 {
		t.Fatalf("wrong group: %v", r.Rows[0])
	}
}

func TestJoinInner(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT items.name, sales.qty FROM sales JOIN items ON sales.item_id = items.id WHERE sales.day = 1 ORDER BY sales.order_id`)
	if len(r.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(r.Rows))
	}
	if r.Rows[0][0].S != "shirt" {
		t.Fatalf("join wrong: %v", r.Rows)
	}
}

func TestJoinLeft(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT items.name, sales.order_id FROM items LEFT JOIN sales ON items.id = sales.item_id ORDER BY items.id`)
	// 4 items with sales rows (shirt twice) + pan with no sale = 6 rows.
	if len(r.Rows) != 6 {
		t.Fatalf("want 6 rows, got %d: %v", len(r.Rows), r.Rows)
	}
	foundNull := false
	for _, row := range r.Rows {
		if row[0].S == "pan" && row[1].IsNull() {
			foundNull = true
		}
	}
	if !foundNull {
		t.Fatalf("left join did not keep unmatched row: %v", r.Rows)
	}
}

func TestDistinct(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT DISTINCT category FROM items ORDER BY category`)
	if len(r.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(r.Rows))
	}
}

func TestInBetweenLike(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT name FROM items WHERE id IN (1, 3, 5) ORDER BY id`)
	if len(r.Rows) != 3 {
		t.Fatalf("IN: want 3 rows, got %d", len(r.Rows))
	}
	r = mustQuery(t, s, `SELECT name FROM items WHERE price BETWEEN 5 AND 25 ORDER BY id`)
	if len(r.Rows) != 3 {
		t.Fatalf("BETWEEN: want 3 rows, got %d: %v", len(r.Rows), r.Rows)
	}
	r = mustQuery(t, s, `SELECT name FROM items WHERE name LIKE 's%'`)
	if len(r.Rows) != 2 {
		t.Fatalf("LIKE: want 2 rows, got %d", len(r.Rows))
	}
}

func TestSubqueryIn(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT name FROM items WHERE id IN (SELECT item_id FROM sales WHERE day = 2) ORDER BY id`)
	if len(r.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d: %v", len(r.Rows), r.Rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT name FROM items WHERE price = (SELECT MAX(price) FROM items)`)
	if len(r.Rows) != 1 || r.Rows[0][0].S != "jeans" {
		t.Fatalf("scalar subquery wrong: %v", r.Rows)
	}
}

func TestInsertDefaultsAndNotNull(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`CREATE TABLE t (a INT PRIMARY KEY, b TEXT DEFAULT 'x', c INT)`)
	s.MustExec(`INSERT INTO t (a) VALUES (1)`)
	r := mustQuery(t, s, `SELECT b, c FROM t WHERE a = 1`)
	if r.Rows[0][0].S != "x" || !r.Rows[0][1].IsNull() {
		t.Fatalf("defaults wrong: %v", r.Rows)
	}
	if _, err := s.Exec(`INSERT INTO items (id, name) VALUES (99, NULL)`); err == nil {
		t.Fatal("want NOT NULL violation")
	}
}

func TestPrimaryKeyViolation(t *testing.T) {
	_, s := newTestEngine(t)
	if _, err := s.Exec(`INSERT INTO items (id, name) VALUES (1, 'dup')`); err == nil {
		t.Fatal("want PK violation")
	}
}

func TestUniqueConstraint(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`CREATE TABLE u (id INT PRIMARY KEY, email TEXT UNIQUE)`)
	s.MustExec(`INSERT INTO u VALUES (1, 'a@x.com')`)
	if _, err := s.Exec(`INSERT INTO u VALUES (2, 'a@x.com')`); err == nil {
		t.Fatal("want unique violation")
	}
	// NULLs do not collide.
	s.MustExec(`INSERT INTO u VALUES (3, NULL)`)
	s.MustExec(`INSERT INTO u VALUES (4, NULL)`)
}

func TestForeignKeyChecks(t *testing.T) {
	_, s := newTestEngine(t)
	if _, err := s.Exec(`INSERT INTO sales VALUES (200, 999, 1, 5.0, 4)`); err == nil {
		t.Fatal("want FK violation on insert")
	}
	if _, err := s.Exec(`DELETE FROM items WHERE id = 1`); err == nil {
		t.Fatal("want FK RESTRICT on parent delete")
	}
	// Deleting a parent with no children is fine.
	s.MustExec(`DELETE FROM items WHERE id = 4`)
}

func TestUpdateBasic(t *testing.T) {
	_, s := newTestEngine(t)
	r := s.MustExec(`UPDATE items SET price = price * 2 WHERE category = 'kitchen'`)
	if r.Affected != 2 {
		t.Fatalf("want 2 affected, got %d", r.Affected)
	}
	q := mustQuery(t, s, `SELECT price FROM items WHERE id = 3`)
	if q.Rows[0][0].F != 14.5 {
		t.Fatalf("update wrong: %v", q.Rows)
	}
}

func TestUpdatePKConflict(t *testing.T) {
	_, s := newTestEngine(t)
	if _, err := s.Exec(`UPDATE items SET id = 2 WHERE id = 3`); err == nil {
		t.Fatal("want PK conflict on update")
	}
}

func TestDelete(t *testing.T) {
	_, s := newTestEngine(t)
	r := s.MustExec(`DELETE FROM sales WHERE day = 1`)
	if r.Affected != 2 {
		t.Fatalf("want 2 deleted, got %d", r.Affected)
	}
	q := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if q.Rows[0][0].I != 3 {
		t.Fatalf("want 3 remaining, got %v", q.Rows[0][0])
	}
}

func TestTransactionCommit(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`BEGIN`)
	s.MustExec(`INSERT INTO items (id, name, price, category) VALUES (10, 'hat', 9.0, 'clothes')`)
	s.MustExec(`UPDATE items SET price = 10.0 WHERE id = 10`)
	s.MustExec(`COMMIT`)
	r := mustQuery(t, s, `SELECT price FROM items WHERE id = 10`)
	if len(r.Rows) != 1 || r.Rows[0][0].F != 10.0 {
		t.Fatalf("commit lost data: %v", r.Rows)
	}
}

func TestTransactionRollback(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`BEGIN`)
	s.MustExec(`INSERT INTO items (id, name, price, category) VALUES (10, 'hat', 9.0, 'clothes')`)
	s.MustExec(`DELETE FROM sales WHERE order_id = 100`)
	s.MustExec(`UPDATE items SET price = 0 WHERE id = 1`)
	s.MustExec(`ROLLBACK`)
	r := mustQuery(t, s, `SELECT COUNT(*) FROM items`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("rollback failed: %v items", r.Rows[0][0])
	}
	r = mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("rollback failed: %v sales", r.Rows[0][0])
	}
	r = mustQuery(t, s, `SELECT price FROM items WHERE id = 1`)
	if r.Rows[0][0].F != 19.99 {
		t.Fatalf("rollback failed to restore update: %v", r.Rows)
	}
}

func TestTransactionDDLRollback(t *testing.T) {
	e, s := newTestEngine(t)
	s.MustExec(`BEGIN`)
	s.MustExec(`CREATE TABLE tmp (a INT PRIMARY KEY)`)
	s.MustExec(`INSERT INTO tmp VALUES (1)`)
	s.MustExec(`ROLLBACK`)
	if _, ok := e.Table("tmp"); ok {
		t.Fatal("rolled-back CREATE TABLE still visible")
	}
	s.MustExec(`BEGIN`)
	s.MustExec(`DROP TABLE sales`)
	s.MustExec(`ROLLBACK`)
	if _, ok := e.Table("sales"); !ok {
		t.Fatal("rolled-back DROP TABLE lost the table")
	}
	r := mustQuery(t, s, `SELECT COUNT(*) FROM sales`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("restored table lost rows: %v", r.Rows[0][0])
	}
}

func TestStatementAtomicity(t *testing.T) {
	_, s := newTestEngine(t)
	// The third row violates the PK; the whole INSERT must be undone.
	_, err := s.Exec(`INSERT INTO items (id, name) VALUES (20, 'a'), (21, 'b'), (1, 'dup')`)
	if err == nil {
		t.Fatal("want PK violation")
	}
	r := mustQuery(t, s, `SELECT COUNT(*) FROM items`)
	if r.Rows[0][0].I != 5 {
		t.Fatalf("partial insert leaked: %v", r.Rows[0][0])
	}
}

func TestBeginTwiceAndCommitWithout(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`BEGIN`)
	if _, err := s.Exec(`BEGIN`); err == nil {
		t.Fatal("want nested BEGIN error")
	}
	s.MustExec(`ROLLBACK`)
	if _, err := s.Exec(`COMMIT`); err == nil {
		t.Fatal("want COMMIT without txn error")
	}
}

func TestPrivileges(t *testing.T) {
	e, _ := newTestEngine(t)
	e.Grants().Grant("alice", ActionSelect, "items")
	alice := e.NewSession("alice")
	if _, err := alice.Exec(`SELECT * FROM items`); err != nil {
		t.Fatalf("granted select failed: %v", err)
	}
	_, err := alice.Exec(`SELECT * FROM sales`)
	var pe *PermissionError
	if !errors.As(err, &pe) {
		t.Fatalf("want PermissionError, got %v", err)
	}
	if _, err := alice.Exec(`INSERT INTO items (id, name) VALUES (50, 'x')`); err == nil {
		t.Fatal("want insert denied")
	}
	if _, err := alice.Exec(`DROP TABLE items`); err == nil {
		t.Fatal("want drop denied")
	}
	if _, err := alice.Exec(`GRANT SELECT ON sales TO alice`); err == nil {
		t.Fatal("want grant denied for non-superuser")
	}
}

func TestGrantRevokeSQL(t *testing.T) {
	e, root := newTestEngine(t)
	root.MustExec(`GRANT SELECT, INSERT ON items TO bob`)
	bob := e.NewSession("bob")
	bob.MustExec(`SELECT * FROM items`)
	bob.MustExec(`INSERT INTO items (id, name) VALUES (60, 'belt')`)
	root.MustExec(`REVOKE INSERT ON items FROM bob`)
	if _, err := bob.Exec(`INSERT INTO items (id, name) VALUES (61, 'tie')`); err == nil {
		t.Fatal("want revoked insert denied")
	}
}

func TestColumnPrivileges(t *testing.T) {
	e, _ := newTestEngine(t)
	e.Grants().GrantColumns("carol", ActionSelect, "items", []string{"id", "name"})
	carol := e.NewSession("carol")
	carol.MustExec(`SELECT id, name FROM items`)
	if _, err := carol.Exec(`SELECT price FROM items`); err == nil {
		t.Fatal("want column privilege violation")
	}
	if _, err := carol.Exec(`SELECT * FROM items`); err == nil {
		t.Fatal("want star rejected under column grants")
	}
}

func TestWildcardGrant(t *testing.T) {
	e, _ := newTestEngine(t)
	e.Grants().Grant("dan", ActionSelect, "*")
	dan := e.NewSession("dan")
	dan.MustExec(`SELECT * FROM items`)
	dan.MustExec(`SELECT * FROM sales`)
}

func TestCreateIndexAndLookup(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`CREATE INDEX idx_cat ON items (category)`)
	r := mustQuery(t, s, `SELECT COUNT(*) FROM items WHERE category = 'clothes'`)
	if r.Rows[0][0].I != 3 {
		t.Fatalf("index path wrong: %v", r.Rows[0][0])
	}
	// Index stays consistent across writes.
	s.MustExec(`INSERT INTO items (id, name, category) VALUES (70, 'scarf', 'clothes')`)
	s.MustExec(`UPDATE items SET category = 'kitchen' WHERE id = 70`)
	r = mustQuery(t, s, `SELECT COUNT(*) FROM items WHERE category = 'clothes'`)
	if r.Rows[0][0].I != 3 {
		t.Fatalf("index stale after update: %v", r.Rows[0][0])
	}
	s.MustExec(`DELETE FROM items WHERE id = 70`)
	r = mustQuery(t, s, `SELECT COUNT(*) FROM items WHERE category = 'kitchen'`)
	if r.Rows[0][0].I != 2 {
		t.Fatalf("index stale after delete: %v", r.Rows[0][0])
	}
}

func TestUniqueIndexCreation(t *testing.T) {
	_, s := newTestEngine(t)
	if _, err := s.Exec(`CREATE UNIQUE INDEX idx_cat ON items (category)`); err == nil {
		t.Fatal("want duplicate-value rejection for unique index")
	}
	s.MustExec(`CREATE UNIQUE INDEX idx_name ON items (name)`)
	if _, err := s.Exec(`INSERT INTO items (id, name) VALUES (80, 'mug')`); err == nil {
		t.Fatal("want unique index violation")
	}
}

func TestAlterTable(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`ALTER TABLE items ADD COLUMN stock INT DEFAULT 0`)
	r := mustQuery(t, s, `SELECT stock FROM items WHERE id = 1`)
	if r.Rows[0][0].I != 0 {
		t.Fatalf("added column default wrong: %v", r.Rows)
	}
	s.MustExec(`ALTER TABLE items RENAME TO products`)
	mustQuery(t, s, `SELECT * FROM products`)
	if _, err := s.Exec(`SELECT * FROM items`); err == nil {
		t.Fatal("old name still resolves after rename")
	}
}

func TestExpressionFunctions(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT UPPER(name), LENGTH(name), ROUND(price, 1) FROM items WHERE id = 1`)
	if r.Rows[0][0].S != "SHIRT" || r.Rows[0][1].I != 5 || r.Rows[0][2].F != 20.0 {
		t.Fatalf("functions wrong: %v", r.Rows)
	}
	r = mustQuery(t, s, `SELECT COALESCE(NULL, 'x'), ABS(-4), CAST('12' AS INTEGER)`)
	if r.Rows[0][0].S != "x" || r.Rows[0][1].I != 4 || r.Rows[0][2].I != 12 {
		t.Fatalf("scalar functions wrong: %v", r.Rows)
	}
}

func TestCaseExpression(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT name, CASE WHEN price > 20 THEN 'high' ELSE 'low' END AS band FROM items ORDER BY id`)
	if r.Rows[0][1].S != "low" || r.Rows[1][1].S != "high" {
		t.Fatalf("case wrong: %v", r.Rows)
	}
}

func TestNullSemantics(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`CREATE TABLE n (a INT PRIMARY KEY, b INT)`)
	s.MustExec(`INSERT INTO n VALUES (1, NULL), (2, 5)`)
	// NULL comparisons exclude rows.
	r := mustQuery(t, s, `SELECT COUNT(*) FROM n WHERE b = 5`)
	if r.Rows[0][0].I != 1 {
		t.Fatalf("null filter wrong: %v", r.Rows)
	}
	r = mustQuery(t, s, `SELECT COUNT(*) FROM n WHERE b != 5`)
	if r.Rows[0][0].I != 0 {
		t.Fatalf("null != filter wrong: %v", r.Rows)
	}
	r = mustQuery(t, s, `SELECT COUNT(*) FROM n WHERE b IS NULL`)
	if r.Rows[0][0].I != 1 {
		t.Fatalf("IS NULL wrong: %v", r.Rows)
	}
	// Aggregates ignore NULLs; COUNT(*) does not.
	r = mustQuery(t, s, `SELECT COUNT(b), COUNT(*), SUM(b) FROM n`)
	if r.Rows[0][0].I != 1 || r.Rows[0][1].I != 2 || r.Rows[0][2].I != 5 {
		t.Fatalf("null aggregates wrong: %v", r.Rows)
	}
}

func TestEmptyAggregates(t *testing.T) {
	_, s := newTestEngine(t)
	s.MustExec(`CREATE TABLE empty_t (a INT PRIMARY KEY)`)
	r := mustQuery(t, s, `SELECT COUNT(*), SUM(a) FROM empty_t`)
	if len(r.Rows) != 1 || r.Rows[0][0].I != 0 || !r.Rows[0][1].IsNull() {
		t.Fatalf("empty aggregate wrong: %v", r.Rows)
	}
	r = mustQuery(t, s, `SELECT a, COUNT(*) FROM empty_t GROUP BY a`)
	if len(r.Rows) != 0 {
		t.Fatalf("grouped empty table must return no rows: %v", r.Rows)
	}
}

func TestDropTableBlockedByFK(t *testing.T) {
	_, s := newTestEngine(t)
	if _, err := s.Exec(`DROP TABLE items`); err == nil {
		t.Fatal("want drop blocked by referencing table")
	}
	s.MustExec(`DROP TABLE sales`)
	s.MustExec(`DROP TABLE items`)
}

func TestSyntaxErrors(t *testing.T) {
	_, s := newTestEngine(t)
	bad := []string{
		`SELEC * FROM items`,
		`SELECT FROM items`,
		`INSERT INTO items VALUES`,
		`UPDATE items SET`,
		`SELECT * FROM items WHERE`,
		`CREATE TABLE x (a BADTYPE)`,
		`SELECT * FROM items WHERE name = 'unterminated`,
	}
	for _, q := range bad {
		if _, err := s.Exec(q); err == nil {
			t.Fatalf("want syntax error for %q", q)
		}
	}
}

func TestUnknownObjects(t *testing.T) {
	_, s := newTestEngine(t)
	if _, err := s.Exec(`SELECT * FROM nope`); err == nil {
		t.Fatal("want unknown table error")
	}
	if _, err := s.Exec(`SELECT nope FROM items`); err == nil {
		t.Fatal("want unknown column error")
	}
	var nf *NotFoundError
	_, err := s.Exec(`SELECT * FROM nope`)
	if !errors.As(err, &nf) {
		t.Fatalf("want NotFoundError, got %T", err)
	}
}

func TestStatementVerb(t *testing.T) {
	cases := map[string]string{
		"SELECT 1":               "SELECT",
		"  insert into t values": "INSERT",
		"-- c\nDELETE FROM t":    "DELETE",
		"BEGIN":                  "BEGIN",
		"update t set a = 1":     "UPDATE",
		"DROP TABLE t":           "DROP",
		"":                       "",
	}
	for sql, want := range cases {
		if got := StatementVerb(sql); got != want {
			t.Errorf("StatementVerb(%q) = %q, want %q", sql, got, want)
		}
	}
}

func TestReferencedTables(t *testing.T) {
	stmt, err := Parse(`SELECT a.x FROM t1 a JOIN t2 ON a.id = t2.id WHERE a.y IN (SELECT z FROM t3)`)
	if err != nil {
		t.Fatal(err)
	}
	got := ReferencedTables(stmt)
	if len(got) != 3 {
		t.Fatalf("want 3 tables, got %v", got)
	}
}

func TestSchemaSQL(t *testing.T) {
	e, _ := newTestEngine(t)
	tab, _ := e.Table("sales")
	sql := SchemaSQL(tab)
	for _, want := range []string{"CREATE TABLE sales", "order_id INTEGER PRIMARY KEY", "FOREIGN KEY (item_id) REFERENCES items(id)"} {
		if !strings.Contains(sql, want) {
			t.Fatalf("schema missing %q:\n%s", want, sql)
		}
	}
	// Round-trip: the emitted schema parses.
	if _, err := Parse(sql); err != nil {
		t.Fatalf("emitted schema does not parse: %v\n%s", err, sql)
	}
}

func TestColumnValues(t *testing.T) {
	e, _ := newTestEngine(t)
	vals, err := e.ColumnValues("items", "category", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("want 2 distinct values, got %v", vals)
	}
	if _, err := e.ColumnValues("items", "nope", 0); err == nil {
		t.Fatal("want unknown column error")
	}
}

func TestExecScript(t *testing.T) {
	e := NewEngine("scriptdb")
	s := e.NewSession("root")
	res, err := s.ExecScript(`
		CREATE TABLE a (x INT PRIMARY KEY);
		INSERT INTO a VALUES (1), (2);
		SELECT COUNT(*) FROM a;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[2].Rows[0][0].I != 2 {
		t.Fatalf("script results wrong: %v", res)
	}
}

func TestCrossJoinCount(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT COUNT(*) FROM items, sales`)
	if r.Rows[0][0].I != 25 {
		t.Fatalf("cross join count = %v, want 25", r.Rows[0][0])
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	_, s := newTestEngine(t)
	r := mustQuery(t, s, `SELECT a.name, b.name FROM items a, items b WHERE a.price < b.price AND a.id = 1 AND b.id = 2`)
	if len(r.Rows) != 1 {
		t.Fatalf("self join wrong: %v", r.Rows)
	}
}

func TestFromlessSelect(t *testing.T) {
	e := NewEngine("x")
	s := e.NewSession("root")
	r := mustQuery(t, s, `SELECT 1 + 2 AS three, 'a' || 'b'`)
	if r.Rows[0][0].I != 3 || r.Rows[0][1].S != "ab" {
		t.Fatalf("fromless select wrong: %v", r.Rows)
	}
}
