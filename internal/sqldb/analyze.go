package sqldb

// EXPLAIN ANALYZE: execute a statement with per-operator instrumentation
// and render the plan annotated with each operator's actual row count and
// wall time.
//
// The collector is keyed by plan-node pointer. That works because EXPLAIN
// statements are never plan-cached (prepare returns nil for them), so the
// plan built by execExplainAnalyze is private to this session, and because
// Plan.root reuses the very same Source/Access node pointers the executor
// runs (SelectPlan.Tree and WritePlan.Tree wrap, never copy).

import (
	"fmt"
	"strings"
	"time"
)

// analyzeState collects per-operator actuals for one EXPLAIN ANALYZE
// statement. It lives on the session for the duration of the statement
// (statement state is serialized by Session.mu like curView).
type analyzeState struct {
	nodes map[PlanNode]*analyzeNode
}

type analyzeNode struct {
	rows int64
	dur  time.Duration
}

// note records one operator execution. Times are inclusive of children,
// PostgreSQL-style; a node executed more than once accumulates.
func (a *analyzeState) note(n PlanNode, rows int, d time.Duration) {
	an := a.nodes[n]
	if an == nil {
		an = &analyzeNode{}
		a.nodes[n] = an
	}
	an.rows += int64(rows)
	an.dur += d
}

// runSource runs one source node, recording its actual row count and wall
// time when an EXPLAIN ANALYZE is active on this session. Every operator
// call site goes through here so the instrumentation lives in one place
// and costs a nil check when inactive.
func (s *Session) runSource(n SourceNode, outer *Env) (*rowSet, error) {
	a := s.analyze
	if a == nil {
		return n.run(s, outer)
	}
	start := time.Now()
	rs, err := n.run(s, outer)
	if err != nil {
		return rs, err
	}
	a.note(n, len(rs.rows), time.Since(start))
	return rs, nil
}

// execExplainAnalyze plans the inner statement once, executes it through
// that same plan with the collector armed, and renders the annotated tree.
// The caller (dispatch) already holds the statement's locks — the inner
// statement's lock class, because isReadOnly/holdsEngineLock/lockForWrite
// all unwrap EXPLAIN ANALYZE.
func (s *Session) execExplainAnalyze(st *ExplainStmt) (*Result, error) {
	plan, err := s.planStmt(st.Stmt)
	if err != nil {
		return nil, err
	}
	a := &analyzeState{nodes: map[PlanNode]*analyzeNode{}}
	s.analyze = a
	defer func() { s.analyze = nil }()
	start := time.Now()
	var res *Result
	switch inner := st.Stmt.(type) {
	case *SelectStmt:
		if err := s.checkColumnPrivileges(inner); err != nil {
			return nil, err
		}
		// Run the already-built plan rather than execSelect, which would
		// re-plan with fresh node pointers and orphan the collector's keys.
		res, err = s.runSelectPlan(plan.sel, nil)
	case *InsertStmt:
		res, err = s.execInsert(inner)
	case *UpdateStmt:
		res, err = s.execUpdate(inner, plan.write)
	case *DeleteStmt:
		res, err = s.execDelete(inner, plan.write)
	default:
		return nil, fmt.Errorf("EXPLAIN ANALYZE does not support %s statements", verbOf(st.Stmt))
	}
	if err != nil {
		return nil, err
	}
	return plan.explainAnalyzeRows(a, time.Since(start), res), nil
}

// explainAnalyzeRows renders the plan tree like Plan.Explain, appending
// " (actual rows=N time=X)" to every operator the collector recorded, plus
// DML affected-rows and total execution time footers.
func (p *Plan) explainAnalyzeRows(a *analyzeState, total time.Duration, res *Result) *Result {
	var lines []string
	if p.header != "" {
		lines = append(lines, p.header)
	}
	var walk func(n PlanNode, depth int)
	walk = func(n PlanNode, depth int) {
		indent := strings.Repeat("  ", depth)
		prefix := ""
		if depth > 0 || p.header != "" {
			prefix = "-> "
		}
		line := indent + prefix + n.Label()
		if an, ok := a.nodes[n]; ok {
			line += fmt.Sprintf(" (actual rows=%d time=%s)", an.rows, fmtAnalyzeDur(an.dur))
		}
		lines = append(lines, line)
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	if p.root != nil {
		depth := 0
		if p.header != "" {
			depth = 1
		}
		walk(p.root, depth)
	}
	if res != nil && len(res.Columns) == 0 {
		// DML result: surface the affected-row count the statement reported.
		lines = append(lines, fmt.Sprintf("Rows Affected: %d", res.Affected))
	}
	lines = append(lines, "Execution Time: "+fmtAnalyzeDur(total))
	out := &Result{Columns: []string{"QUERY PLAN"}}
	for _, line := range lines {
		out.Rows = append(out.Rows, []Value{NewText(line)})
	}
	return out
}

// fmtAnalyzeDur renders durations in fractional milliseconds, the unit
// plan readers expect.
func fmtAnalyzeDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
}
