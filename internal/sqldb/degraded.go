package sqldb

import (
	"errors"
	"fmt"
)

// ErrDegraded is the sentinel for the engine's read-only degraded state:
// errors.Is(err, ErrDegraded) identifies writes refused because a durability
// I/O failure (WAL write/fsync, checkpoint rotation or snapshot write —
// ENOSPC, EIO, a lying disk) made it impossible to honestly acknowledge
// commits. The condition is retryable from the client's point of view: the
// data already committed is safe, reads keep working, and the write can be
// retried once an operator fixes the disk and reopens the database.
var ErrDegraded = errors.New("engine is in read-only degraded mode after a durability I/O failure")

// DegradedError is the error writes receive while the engine is degraded.
// It wraps the I/O error that triggered degradation and matches ErrDegraded
// via errors.Is.
type DegradedError struct {
	// Op names the subsystem that failed: "wal" or "checkpoint".
	Op string
	// Err is the triggering I/O error.
	Err error
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("engine is read-only (degraded): %s failure: %v; committed data is safe, reads still work — retry writes after the underlying condition is fixed and the database reopened", e.Op, e.Err)
}

// Unwrap exposes the triggering I/O error.
func (e *DegradedError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrDegraded) true for DegradedErrors.
func (e *DegradedError) Is(target error) bool { return target == ErrDegraded }

// degrade parks the engine in read-only degraded mode. The first failure
// wins (later ones are usually cascades of the first); the state is sticky
// until the database is closed and reopened — recovery re-verifies the log,
// which a live engine with a misbehaving disk cannot.
//
// It is safe to call from any goroutine with any combination of wal/engine
// locks held: it only touches an atomic.
func (e *Engine) degrade(op string, err error) {
	if e.degradedErr.CompareAndSwap(nil, &DegradedError{Op: op, Err: err}) {
		e.metrics.degradedTransitions.Add(1)
	}
}

// degraded returns the engine's degradation, or nil while healthy.
func (e *Engine) degradedState() *DegradedError {
	return e.degradedErr.Load()
}

// checkWritable is the write-path gate: every statement that would mutate
// engine state calls it before doing any memory work, so a degraded engine
// refuses writes cleanly instead of mutating the heap and then failing the
// durability wait.
func (e *Engine) checkWritable() error {
	if de := e.degradedErr.Load(); de != nil {
		return de
	}
	return nil
}

// noteCkptErr records the outcome of the most recent checkpoint attempt
// (nil clears it): background checkpoints have no caller to hand the error
// to, so it is parked here and surfaced via Health / sqlshell \checkpoint.
func (e *Engine) noteCkptErr(err error) {
	if err == nil {
		e.ckptErr.Store(nil)
		return
	}
	e.ckptErr.Store(&err)
}

// HealthStatus is the engine's durability health, surfaced through
// core.Conn.Health and the sqlshell \wal and \checkpoint commands.
type HealthStatus struct {
	// Degraded is true once a durability I/O failure parked the engine in
	// read-only mode.
	Degraded bool
	// DegradedBy names the failed subsystem ("wal", "checkpoint") when
	// Degraded.
	DegradedBy string
	// DegradedErr is the triggering I/O error's message when Degraded.
	DegradedErr string
	// Reason is a one-line human-readable account of the degradation —
	// subsystem plus triggering error plus the operator action — "" while
	// healthy. Shown by sqlshell \wal and the HTTP stats endpoint.
	Reason string
	// LastCheckpointErr is the most recent checkpoint failure ("" after a
	// success): background checkpoints would otherwise fail invisibly.
	LastCheckpointErr string
}

// Healthy reports whether the engine can still promise durability.
func (h HealthStatus) Healthy() bool {
	return !h.Degraded && h.LastCheckpointErr == ""
}

// Health reports the engine's durability health. In-memory engines are
// always healthy (they promise no durability to lose).
func (e *Engine) Health() HealthStatus {
	var h HealthStatus
	if de := e.degradedErr.Load(); de != nil {
		h.Degraded = true
		h.DegradedBy = de.Op
		h.DegradedErr = de.Err.Error()
		h.Reason = fmt.Sprintf("read-only: %s failure (%v); committed data is safe, reads still work — fix the disk and reopen the database", de.Op, de.Err)
	}
	if p := e.ckptErr.Load(); p != nil {
		h.LastCheckpointErr = (*p).Error()
	}
	return h
}
