package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func plannerEngine(t *testing.T) *Session {
	t.Helper()
	e := NewEngine("plantest")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE dept (id INT PRIMARY KEY, name TEXT)`)
	s.MustExec(`CREATE TABLE emp (id INT PRIMARY KEY, dept_id INT REFERENCES dept(id), name TEXT, salary REAL)`)
	s.MustExec(`CREATE INDEX idx_emp_dept ON emp (dept_id)`)
	s.MustExec(`INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'ops')`)
	for i := 0; i < 60; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO emp VALUES (%d, %d, 'e%d', %f)", i, i%3+1, i, float64(i)*10))
	}
	return s
}

func mustPlan(t *testing.T, s *Session, sql string) *Plan {
	t.Helper()
	p, err := s.Plan(sql)
	if err != nil {
		t.Fatalf("Plan(%q): %v", sql, err)
	}
	return p
}

func TestPlannerIndexScanSelection(t *testing.T) {
	s := plannerEngine(t)

	// Indexed equality must choose the hash index.
	p := mustPlan(t, s, "SELECT name FROM emp WHERE dept_id = 2")
	if !strings.Contains(p.Explain(), "Index Scan on emp using index idx_emp_dept (dept_id = 2)") {
		t.Fatalf("expected index scan, got:\n%s", p.Explain())
	}

	// Primary-key equality uses the PK map.
	p = mustPlan(t, s, "SELECT name FROM emp WHERE id = 7")
	if !strings.Contains(p.Explain(), "Index Scan on emp using primary key (id = 7)") {
		t.Fatalf("expected pk scan, got:\n%s", p.Explain())
	}

	// Equality on an unindexed column falls back to a seq scan.
	p = mustPlan(t, s, "SELECT id FROM emp WHERE name = 'e3'")
	if !strings.Contains(p.Explain(), "Seq Scan on emp") {
		t.Fatalf("expected seq scan, got:\n%s", p.Explain())
	}
	if strings.Contains(p.Explain(), "Index Scan") {
		t.Fatalf("unexpected index scan:\n%s", p.Explain())
	}

	// A range predicate uses the index's ordered face (it cannot use the
	// hash map, which only serves equality).
	p = mustPlan(t, s, "SELECT id FROM emp WHERE dept_id > 1")
	if !strings.Contains(p.Explain(), "Index Range Scan on emp using index idx_emp_dept (dept_id > 1)") {
		t.Fatalf("range predicates should use the ordered index:\n%s", p.Explain())
	}
}

func TestPlannerPredicatePushdown(t *testing.T) {
	s := plannerEngine(t)

	// Single-table conjuncts sit below the join; the cross-source equality
	// is recognized as a hash-join condition via ON.
	p := mustPlan(t, s,
		"SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id WHERE d.name = 'eng' AND e.salary > 100")
	text := p.Explain()
	sel := p.Select()
	if sel == nil {
		t.Fatal("expected a SELECT plan")
	}
	if sel.Residual != nil {
		t.Fatalf("all conjuncts should push down, residual = %s\nplan:\n%s", sel.Residual, text)
	}
	if !strings.Contains(text, "Hash Join (inner) on (e.dept_id = d.id)") {
		t.Fatalf("expected hash join, got:\n%s", text)
	}
	// Pushed filters appear below the join, directly over their scans.
	join, ok := sel.Source.(*JoinNode)
	if !ok {
		t.Fatalf("source is %T, want JoinNode", sel.Source)
	}
	lf, ok := join.Left.(*FilterNode)
	if !ok || !strings.Contains(lf.Cond.String(), "salary") {
		t.Fatalf("left input should filter on salary, got %s", join.Left.Label())
	}
	rf, ok := join.Right.(*FilterNode)
	if !ok || !strings.Contains(rf.Cond.String(), "name") {
		t.Fatalf("right input should filter on dept name, got %s", join.Right.Label())
	}

	// A cross-source comparison that is not the ON clause stays residual.
	p = mustPlan(t, s,
		"SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id WHERE e.id > d.id")
	if p.Select().Residual == nil {
		t.Fatalf("cross-source conjunct must stay residual:\n%s", p.Explain())
	}
}

func TestPlannerNoPushdownThroughLeftJoin(t *testing.T) {
	s := plannerEngine(t)
	s.MustExec("INSERT INTO dept VALUES (9, 'empty')")

	// Filtering the null-supplying side of a LEFT JOIN before joining would
	// drop the null-extended row; the planner must keep the WHERE residual.
	p := mustPlan(t, s,
		"SELECT d.name FROM dept d LEFT JOIN emp e ON d.id = e.dept_id WHERE d.id = 9")
	sel := p.Select()
	if sel.Residual == nil {
		t.Fatalf("LEFT JOIN queries must not push predicates:\n%s", p.Explain())
	}
	r := s.MustExec("SELECT d.name FROM dept d LEFT JOIN emp e ON d.id = e.dept_id WHERE d.id = 9")
	if len(r.Rows) != 1 || r.Rows[0][0].S != "empty" {
		t.Fatalf("left join result wrong: %v", r.Rows)
	}
}

func TestPlannerIndexUnderJoin(t *testing.T) {
	s := plannerEngine(t)
	// A pushed equality conjunct enables an index scan below the join —
	// something the pre-planner executor could not do.
	p := mustPlan(t, s,
		"SELECT d.name, e.name FROM dept d JOIN emp e ON d.id = e.dept_id WHERE e.dept_id = 1")
	if !strings.Contains(p.Explain(), "Index Scan on emp using index idx_emp_dept") {
		t.Fatalf("expected index scan under join:\n%s", p.Explain())
	}
	r := s.MustExec(
		"SELECT COUNT(*) FROM dept d JOIN emp e ON d.id = e.dept_id WHERE e.dept_id = 1")
	if r.Rows[0][0].I != 20 {
		t.Fatalf("want 20 joined rows, got %d", r.Rows[0][0].I)
	}
}

func TestPlannerEquivalence(t *testing.T) {
	s := plannerEngine(t)
	// Index path and forced-scan path must agree. The LIKE conjunct keeps
	// the filter honest; dropping the index (different column spelling) is
	// simulated with an OR that defeats indexableEq.
	indexed := s.MustExec("SELECT id, name FROM emp WHERE dept_id = 2 AND name LIKE 'e%' ORDER BY id")
	scanned := s.MustExec("SELECT id, name FROM emp WHERE (dept_id = 2 OR 1 = 0) AND name LIKE 'e%' ORDER BY id")
	if len(indexed.Rows) != len(scanned.Rows) || len(indexed.Rows) == 0 {
		t.Fatalf("index vs scan disagree: %d vs %d rows", len(indexed.Rows), len(scanned.Rows))
	}
	for i := range indexed.Rows {
		if !Equal(indexed.Rows[i][0], scanned.Rows[i][0]) {
			t.Fatalf("row %d differs", i)
		}
	}

	// Type-coerced equality: the literal 2.0 must match INT dept_id even
	// through the index path (canonical Value.Key unifies integral floats).
	a := s.MustExec("SELECT COUNT(*) FROM emp WHERE dept_id = 2.0")
	b := s.MustExec("SELECT COUNT(*) FROM emp WHERE dept_id = 2")
	if a.Rows[0][0].I != b.Rows[0][0].I {
		t.Fatalf("coerced index lookup diverged: %d vs %d", a.Rows[0][0].I, b.Rows[0][0].I)
	}
}

func TestExplainStatement(t *testing.T) {
	s := plannerEngine(t)

	r := s.MustExec("EXPLAIN SELECT name FROM emp WHERE dept_id = 2 ORDER BY salary DESC LIMIT 5")
	if len(r.Columns) != 1 || r.Columns[0] != "QUERY PLAN" {
		t.Fatalf("EXPLAIN columns = %v", r.Columns)
	}
	text := r.Text()
	for _, want := range []string{"Limit 5", "Sort: salary DESC", "Project: name",
		"Filter: (dept_id = 2)", "Index Scan on emp using index idx_emp_dept"} {
		if !strings.Contains(text, want) {
			t.Fatalf("EXPLAIN output missing %q:\n%s", want, text)
		}
	}

	// Aggregates show up as a pipeline stage.
	r = s.MustExec("EXPLAIN SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id HAVING COUNT(*) > 1")
	if !strings.Contains(r.Text(), "Aggregate (group by: dept_id)") {
		t.Fatalf("missing aggregate stage:\n%s", r.Text())
	}

	// DML explains: update/delete show the real row-matching access path —
	// the PK point lookup here, a seq scan only when nothing indexes the
	// predicate — and insert shows its arity.
	r = s.MustExec("EXPLAIN UPDATE emp SET salary = 0 WHERE id = 3")
	if !strings.Contains(r.Text(), "Update on emp") ||
		!strings.Contains(r.Text(), "Index Scan on emp using primary key (id = 3)") {
		t.Fatalf("update explain wrong:\n%s", r.Text())
	}
	r = s.MustExec("EXPLAIN DELETE FROM emp WHERE name = 'e3'")
	if !strings.Contains(r.Text(), "Delete on emp") || !strings.Contains(r.Text(), "Seq Scan on emp") {
		t.Fatalf("delete explain wrong:\n%s", r.Text())
	}
	r = s.MustExec("EXPLAIN INSERT INTO dept VALUES (4, 'hr'), (5, 'fin')")
	if !strings.Contains(r.Text(), "Insert on dept (2 rows)") {
		t.Fatalf("insert explain wrong:\n%s", r.Text())
	}

	// EXPLAIN must not execute: the insert above changed nothing.
	if got := s.MustExec("SELECT COUNT(*) FROM dept").Rows[0][0].I; got != 3 {
		t.Fatalf("EXPLAIN INSERT executed the insert: %d depts", got)
	}

	// Unsupported statements and nesting are rejected.
	if _, err := s.Exec("EXPLAIN CREATE TABLE z (a INT)"); err == nil {
		t.Fatal("EXPLAIN DDL should error")
	}
	if _, err := s.Exec("EXPLAIN EXPLAIN SELECT 1"); err == nil {
		t.Fatal("nested EXPLAIN should error")
	}
}

func TestExplainPrivileges(t *testing.T) {
	s := plannerEngine(t)
	s.MustExec("GRANT SELECT ON dept TO intern")
	intern := s.Engine().NewSession("intern")
	if _, err := intern.Exec("EXPLAIN SELECT * FROM dept"); err != nil {
		t.Fatalf("granted EXPLAIN failed: %v", err)
	}
	if _, err := intern.Exec("EXPLAIN SELECT * FROM emp"); err == nil {
		t.Fatal("EXPLAIN must enforce the underlying statement's privileges")
	}
	var pe *PermissionError
	if _, err := intern.Exec("EXPLAIN DELETE FROM dept"); err == nil {
		t.Fatal("EXPLAIN DELETE without privilege should fail")
	} else if !errors.As(err, &pe) {
		t.Fatalf("want PermissionError, got %v", err)
	}
}

func TestPlanOnView(t *testing.T) {
	s := plannerEngine(t)
	s.MustExec("CREATE VIEW eng AS SELECT id, name FROM emp WHERE dept_id = 1")
	p := mustPlan(t, s, "SELECT * FROM eng")
	if !strings.Contains(p.Explain(), "View Scan on eng") {
		t.Fatalf("expected view scan:\n%s", p.Explain())
	}
	r := s.MustExec("SELECT COUNT(*) FROM eng")
	if r.Rows[0][0].I != 20 {
		t.Fatalf("view rows = %d, want 20", r.Rows[0][0].I)
	}
}
