package sqldb

import (
	"fmt"
	"strings"
)

// CheckConsistency audits the engine's internal invariants over the latest
// committed state: heap bijections, primary-key and unique-index uniqueness,
// and index membership for every visible row. It returns every violation
// found (nil means the engine is consistent). The crash simulator runs it
// after every simulated reopen, so a recovery path that rebuilds the heap
// but forgets an index face fails loudly instead of surfacing later as a
// wrong query result.
func (e *Engine) CheckConsistency() []error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var errs []error
	for _, lo := range e.tableOrder {
		t := e.tables[lo]
		if t == nil {
			errs = append(errs, fmt.Errorf("table order names %q but the catalog has no such table", lo))
			continue
		}
		errs = append(errs, t.checkConsistency()...)
	}
	// Every cataloged table must be reachable from the order (the pair is
	// maintained together; drift means a DDL path updated one but not the
	// other).
	if len(e.tables) != len(e.tableOrder) {
		errs = append(errs, fmt.Errorf("catalog holds %d tables but the order lists %d", len(e.tables), len(e.tableOrder)))
	}
	return errs
}

// checkConsistency audits one table; the caller holds the engine lock.
func (t *Table) checkConsistency() []error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("table %q: "+format, append([]any{t.Name}, args...)...))
	}

	// Heap: rows and byID must be the same set, ids unique, allocator ahead
	// of every allocated id.
	seen := make(map[int64]bool, len(t.rows))
	for _, entry := range t.rows {
		if seen[entry.id] {
			fail("row id %d appears twice in the heap", entry.id)
		}
		seen[entry.id] = true
		if t.byID[entry.id] != entry {
			fail("row id %d is not mapped to its heap entry in byID", entry.id)
		}
		if entry.id > t.nextID {
			fail("row id %d exceeds the allocator watermark %d", entry.id, t.nextID)
		}
	}
	if len(t.byID) != len(t.rows) {
		fail("byID holds %d entries but the heap holds %d", len(t.byID), len(t.rows))
	}

	// Latest committed state: PK uniqueness, unique-index uniqueness, and
	// membership of every visible row in the PK map and each index bucket.
	pkSeen := map[string]int64{}
	uniqueSeen := map[string]map[string]int64{}
	for col := range t.indexes {
		uniqueSeen[col] = map[string]int64{}
	}
	_ = t.visibleRows(latestView(nil), func(entry *rowEntry, rv *rowVersion) error {
		if len(rv.vals) != len(t.Columns) {
			fail("row %d has %d values for %d columns", entry.id, len(rv.vals), len(t.Columns))
			return nil
		}
		if len(t.pkCols) > 0 {
			key := t.pkKey(rv.vals)
			if prev, dup := pkSeen[key]; dup {
				fail("primary key %q is held by both row %d and row %d", key, prev, entry.id)
			}
			pkSeen[key] = entry.id
			if !containsID(t.pkMap[key], entry.id) {
				fail("row %d is missing from the primary-key map under %q", entry.id, key)
			}
		}
		for col, ix := range t.indexes {
			v := rv.vals[ix.col]
			key := v.Key()
			if !containsID(ix.m[key], entry.id) {
				fail("row %d is missing from index %q bucket %q", entry.id, ix.Name, key)
			}
			if ix.Unique && !v.IsNull() {
				if prev, dup := uniqueSeen[col][key]; dup {
					fail("unique index %q value %q is held by both row %d and row %d", ix.Name, key, prev, entry.id)
				}
				uniqueSeen[col][key] = entry.id
			}
		}
		return nil
	})

	// Secondary structures must only reference live heap entries, and the
	// ordered face must stay a sorted set consistent with the hash face.
	for key, ids := range t.pkMap {
		for _, id := range ids {
			if t.byID[id] == nil {
				fail("primary-key map bucket %q references unknown row id %d", key, id)
			}
		}
	}
	for col, ix := range t.indexes {
		if ix.col < 0 || ix.col >= len(t.Columns) || !strings.EqualFold(t.Columns[ix.col].Name, ix.Column) {
			fail("index %q column position %d does not resolve to column %q", ix.Name, ix.col, ix.Column)
			continue
		}
		if col != strings.ToLower(ix.Column) {
			fail("index %q is filed under key %q, not its column", ix.Name, col)
		}
		for key, ids := range ix.m {
			for _, id := range ids {
				if t.byID[id] == nil {
					fail("index %q bucket %q references unknown row id %d", ix.Name, key, id)
				}
			}
		}
		for i, v := range ix.ord {
			if v.IsNull() {
				fail("index %q ordered face holds a NULL at position %d", ix.Name, i)
				continue
			}
			if i > 0 && orderCompare(ix.ord[i-1], v) >= 0 {
				fail("index %q ordered face is not strictly sorted at position %d", ix.Name, i)
			}
			if _, ok := ix.m[v.Key()]; !ok {
				fail("index %q ordered value %q has no hash bucket", ix.Name, v.Key())
			}
		}
	}
	return errs
}

// containsID reports whether the sorted id slice holds id (linear scan: the
// checker is a test/diagnostic path, buckets are small).
func containsID(ids []int64, id int64) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
