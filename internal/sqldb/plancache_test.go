package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func cacheEngine(t *testing.T) (*Engine, *Session) {
	t.Helper()
	e := NewEngine("cache")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, grp INT, val REAL)`)
	for i := 0; i < 100; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, %d, %f)", i, i%10, float64(i)))
	}
	return e, s
}

func TestPlanCacheHitSkipsReplan(t *testing.T) {
	e, s := cacheEngine(t)
	const q = "SELECT COUNT(*) FROM t WHERE grp = 3"

	h0, m0 := e.PlanCacheStats()
	first := s.MustExec(q)
	second := s.MustExec(q)
	third := s.MustExec(q)
	h1, m1 := e.PlanCacheStats()
	if m1-m0 != 1 {
		t.Fatalf("misses grew by %d, want 1 (only the cold execution)", m1-m0)
	}
	if h1-h0 != 2 {
		t.Fatalf("hits grew by %d, want 2", h1-h0)
	}
	for _, r := range []*Result{first, second, third} {
		if r.Rows[0][0].I != 10 {
			t.Fatalf("cached result diverged: %v", r.Rows[0][0])
		}
	}

	// Cached writes execute too — and re-execute, not replay.
	const u = "UPDATE t SET val = val + 1 WHERE id = 7"
	s.MustExec(u)
	s.MustExec(u)
	if r := s.MustExec("SELECT val FROM t WHERE id = 7"); r.Rows[0][0].F != 9 {
		t.Fatalf("two cached updates: val = %v, want 9", r.Rows[0][0])
	}

	// Pre-parsed statements bypass the cache (no SQL text to key on).
	stmt, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	h2, m2 := e.PlanCacheStats()
	if _, err := s.ExecStmt(stmt); err != nil {
		t.Fatal(err)
	}
	h3, m3 := e.PlanCacheStats()
	if h3 != h2 || m3 != m2 {
		t.Fatalf("ExecStmt touched the cache: hits %d->%d misses %d->%d", h2, h3, m2, m3)
	}
}

// DDL bumps the catalog version, so every cached plan is invalid at its
// next lookup — and the replacement plan sees the new catalog.
func TestPlanCacheInvalidationOnDDL(t *testing.T) {
	e, s := cacheEngine(t)
	const q = "SELECT COUNT(*) FROM t WHERE grp = 3"

	s.MustExec(q) // cold: cached with a seq-scan source (no index yet)
	s.MustExec(q) // hit
	v := e.CatalogVersion()
	s.MustExec("CREATE INDEX idx_grp ON t (grp)")
	if e.CatalogVersion() == v {
		t.Fatal("CREATE INDEX must bump the catalog version")
	}

	h0, m0 := e.PlanCacheStats()
	if r := s.MustExec(q); r.Rows[0][0].I != 10 {
		t.Fatalf("post-DDL result wrong: %v", r.Rows[0][0])
	}
	h1, m1 := e.PlanCacheStats()
	if h1 != h0 || m1-m0 != 1 {
		t.Fatalf("stale entry must miss: hits %d->%d, misses %d->%d", h0, h1, m0, m1)
	}
	// The re-planned statement uses the new index.
	p := mustPlan(t, s, q)
	if !strings.Contains(p.Explain(), "Index Scan on t using index idx_grp") {
		t.Fatalf("replan ignored the new index:\n%s", p.Explain())
	}
	// And the refreshed entry hits again.
	s.MustExec(q)
	h2, _ := e.PlanCacheStats()
	if h2 != h1+1 {
		t.Fatalf("refreshed entry did not hit (hits %d -> %d)", h1, h2)
	}

	// DROP TABLE invalidates too; the stale plan must not resurrect the
	// table or crash — the cold path reports the missing table.
	s.MustExec("DROP TABLE t")
	if _, err := s.Exec(q); err == nil {
		t.Fatal("query against a dropped table must fail")
	}
}

// Privilege changes invalidate cached plans (grants share the catalog
// version counter), and privileges are re-checked on every execution
// regardless.
func TestPlanCacheGrantRevoke(t *testing.T) {
	e, s := cacheEngine(t)
	s.MustExec("GRANT SELECT ON t TO intern")
	intern := e.NewSession("intern")
	const q = "SELECT COUNT(*) FROM t"

	intern.MustExec(q)
	intern.MustExec(q) // cached hit for (intern, q)
	s.MustExec("REVOKE SELECT ON t FROM intern")

	var pe *PermissionError
	if _, err := intern.Exec(q); err == nil {
		t.Fatal("revoked user must not be served from the plan cache")
	} else if !errors.As(err, &pe) {
		t.Fatalf("want PermissionError, got %v", err)
	}

	// Direct Grants() mutation (no SQL) also invalidates: it shares the
	// version counter.
	v := e.CatalogVersion()
	e.Grants().Grant("intern", ActionSelect, "t")
	if e.CatalogVersion() == v {
		t.Fatal("direct grant must bump the catalog version")
	}
	intern.MustExec(q)
}

// Entries are keyed per user: one user's cached plan never leaks to
// another, whose privileges and column grants may differ.
func TestPlanCachePerUser(t *testing.T) {
	e, s := cacheEngine(t)
	s.MustExec("GRANT SELECT ON t TO alice")
	const q = "SELECT COUNT(*) FROM t"

	alice := e.NewSession("alice")
	alice.MustExec(q)
	alice.MustExec(q)

	// bob shares the SQL text but has no grant; a shared cache entry would
	// skip his cold-path rejection.
	bob := e.NewSession("bob")
	if _, err := bob.Exec(q); err == nil {
		t.Fatal("bob must not ride alice's cache entry")
	}
}

// The LRU keeps the cache bounded under statement churn.
func TestPlanCacheEviction(t *testing.T) {
	e, s := cacheEngine(t)
	for i := 0; i < planCacheCap+50; i++ {
		s.MustExec(fmt.Sprintf("SELECT val FROM t WHERE id = %d", i%100))
		s.MustExec(fmt.Sprintf("SELECT grp FROM t WHERE id = %d + %d", i, i))
	}
	e.plans.mu.Lock()
	n, l := len(e.plans.entries), e.plans.lru.Len()
	e.plans.mu.Unlock()
	if n != l {
		t.Fatalf("cache books disagree: %d entries, %d LRU slots", n, l)
	}
	if n > planCacheCap {
		t.Fatalf("cache grew to %d entries, cap is %d", n, planCacheCap)
	}
}
