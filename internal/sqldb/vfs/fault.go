package vfs

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// OpKind identifies one class of filesystem operation for fault hooks and
// crash-point enumeration.
type OpKind uint8

const (
	OpOpen OpKind = iota // OpenFile creating or opening a file
	OpCreateTemp
	OpWrite
	OpSync
	OpSyncDir
	OpRename
	OpRemove
	OpTruncate
	OpReadFile
	OpReadDir
)

// String returns a short spelling for reports.
func (k OpKind) String() string {
	switch k {
	case OpOpen:
		return "open"
	case OpCreateTemp:
		return "create-temp"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpSyncDir:
		return "sync-dir"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpReadFile:
		return "read-file"
	case OpReadDir:
		return "read-dir"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op describes one filesystem operation as it is about to execute. Step is
// the index the operation will occupy in the mutating-op history (reads
// carry the current counter without consuming an index).
type Op struct {
	Step int
	Kind OpKind
	Path string // primary path (destination for renames)
	From string // rename source
	N    int    // payload length for writes
}

// Fault is a hook's injection decision for one operation.
type Fault struct {
	// Err is returned to the caller. The operation is not applied — except
	// writes, which first apply Partial bytes (an ENOSPC mid-frame tears the
	// write exactly there).
	Err error
	// Partial is how many payload bytes a failing write applies first.
	Partial int
	// LieSync makes a Sync or SyncDir report success without making
	// anything durable — the "firmware lies about flush" fault shape.
	LieSync bool
}

// TearPolicy selects how unfsynced data fares in a crash image.
type TearPolicy uint8

const (
	// TearKill models a process kill (OS survives): the page cache view is
	// what the next open sees — every completed write, rename, and remove.
	TearKill TearPolicy = iota
	// TearLoseUnsynced models a strict power loss: only fsynced bytes and
	// dir-synced (or file-fsynced) name operations survive.
	TearLoseUnsynced
	// TearPartial models power loss with a partially flushed page cache:
	// each file keeps a seeded-random prefix of its unsynced tail, so frames
	// tear at arbitrary byte offsets.
	TearPartial
)

// String returns the policy name for reports.
func (p TearPolicy) String() string {
	switch p {
	case TearKill:
		return "kill"
	case TearLoseUnsynced:
		return "power-loss"
	case TearPartial:
		return "power-loss-torn"
	}
	return fmt.Sprintf("tear(%d)", int(p))
}

// memFile is one simulated file: the page-cache content, how much of it is
// known durable, and the directory-entry name that would survive power loss.
type memFile struct {
	name    string // current (page-cache) path; "" once removed
	data    []byte
	synced  int    // prefix of data on stable storage
	durName string // dentry that survives power loss; "" = none yet
}

// histOp is one recorded mutating operation, replayable to reconstruct the
// disk model at any historical step.
type histOp struct {
	op   Op
	data []byte // write payload (after any injected tear)
	size int64  // truncate target
}

// FaultFS is an in-memory filesystem implementing FS with three extra
// powers: a fault hook consulted before every operation, a recorded history
// of mutating operations, and crash imaging — reconstructing the durable
// state the disk would hold if power were lost at any recorded step.
//
// The durability model mirrors journaling filesystems in ordered mode:
//
//   - writes land in the page cache; Sync makes the file's current content
//     AND its directory entry durable (fsync commits the inode and, on
//     ext4/xfs in practice, the dentry with it);
//   - renames and removes are applied to the live namespace immediately but
//     survive power loss only after SyncDir (a removed-but-not-dir-synced
//     file reappears in the crash image with its durable content);
//   - unsynced bytes are lost, kept, or torn at an arbitrary offset
//     depending on the TearPolicy.
type FaultFS struct {
	mu     sync.Mutex
	files  map[string]*memFile
	ghosts []*memFile // removed/renamed-over files with a surviving dentry
	locks  map[string]bool
	tmpSeq int

	steps  int
	hist   []histOp
	record bool

	hook func(Op) *Fault
}

// NewFaultFS returns an empty in-memory filesystem.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: map[string]*memFile{}, locks: map[string]bool{}}
}

// SetHook installs (or clears, with nil) the fault hook. The hook runs with
// the filesystem lock held; it must not call back into the FaultFS.
func (m *FaultFS) SetHook(hook func(Op) *Fault) {
	m.mu.Lock()
	m.hook = hook
	m.mu.Unlock()
}

// RecordHistory turns on mutating-op recording for ImageAt.
func (m *FaultFS) RecordHistory(on bool) {
	m.mu.Lock()
	m.record = on
	m.mu.Unlock()
}

// Steps returns how many mutating operations have been applied.
func (m *FaultFS) Steps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.steps
}

// consult runs the hook for op. The caller holds mu.
func (m *FaultFS) consult(op Op) *Fault {
	if m.hook == nil {
		return nil
	}
	op.Step = m.steps
	return m.hook(op)
}

// note records a completed mutating operation. The caller holds mu.
func (m *FaultFS) note(h histOp) {
	h.op.Step = m.steps
	m.steps++
	if m.record {
		m.hist = append(m.hist, h)
	}
}

// --- FS implementation ---

// MkdirAll is a no-op: the model's namespace is flat path strings.
func (m *FaultFS) MkdirAll(string) error { return nil }

func (m *FaultFS) OpenFile(name string, flag int) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.consult(Op{Kind: OpOpen, Path: name}); f != nil && f.Err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: f.Err}
	}
	f := m.files[name]
	if f == nil {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		f = m.applyCreate(name)
	} else if flag&os.O_TRUNC != 0 {
		m.applyTruncate(f, 0)
	}
	return &faultFile{fs: m, f: f, name: name}, nil
}

func (m *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tmpSeq++
	base := strings.Replace(pattern, "*", fmt.Sprintf("%09d", m.tmpSeq), 1)
	name := filepath.Join(dir, base)
	if f := m.consult(Op{Kind: OpCreateTemp, Path: name}); f != nil && f.Err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: name, Err: f.Err}
	}
	if m.files[name] != nil {
		return nil, &os.PathError{Op: "createtemp", Path: name, Err: os.ErrExist}
	}
	f := m.applyCreate(name)
	return &faultFile{fs: m, f: f, name: name}, nil
}

func (m *FaultFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.consult(Op{Kind: OpReadFile, Path: name}); f != nil && f.Err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: f.Err}
	}
	f := m.files[name]
	if f == nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

func (m *FaultFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.consult(Op{Kind: OpReadDir, Path: dir}); f != nil && f.Err != nil {
		return nil, &os.PathError{Op: "readdir", Path: dir, Err: f.Err}
	}
	var names []string
	for path := range m.files {
		if filepath.Dir(path) == filepath.Clean(dir) {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *FaultFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.consult(Op{Kind: OpRename, Path: newpath, From: oldpath}); f != nil && f.Err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: f.Err}
	}
	if m.files[oldpath] == nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	m.applyRename(oldpath, newpath)
	m.note(histOp{op: Op{Kind: OpRename, Path: newpath, From: oldpath}})
	return nil
}

func (m *FaultFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.consult(Op{Kind: OpRemove, Path: name}); f != nil && f.Err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: f.Err}
	}
	if m.files[name] == nil {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	m.applyRemove(name)
	m.note(histOp{op: Op{Kind: OpRemove, Path: name}})
	return nil
}

func (m *FaultFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.consult(Op{Kind: OpTruncate, Path: name}); f != nil && f.Err != nil {
		return &os.PathError{Op: "truncate", Path: name, Err: f.Err}
	}
	f := m.files[name]
	if f == nil {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	m.applyTruncate(f, size)
	m.note(histOp{op: Op{Kind: OpTruncate, Path: name}, size: size})
	return nil
}

func (m *FaultFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.consult(Op{Kind: OpSyncDir, Path: dir}); f != nil {
		if f.Err != nil {
			return &os.PathError{Op: "sync", Path: dir, Err: f.Err}
		}
		if f.LieSync {
			return nil
		}
	}
	m.applySyncDir(dir)
	m.note(histOp{op: Op{Kind: OpSyncDir, Path: dir}})
	return nil
}

func (m *FaultFS) Lock(name string) (Unlocker, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.locks[name] {
		return nil, &LockHeldError{Path: name}
	}
	if m.files[name] == nil {
		m.applyCreateUnlogged(name)
	}
	m.locks[name] = true
	return &memLock{fs: m, name: name}, nil
}

type memLock struct {
	fs   *FaultFS
	name string
	once sync.Once
}

func (l *memLock) Unlock() error {
	l.once.Do(func() {
		l.fs.mu.Lock()
		delete(l.fs.locks, l.name)
		l.fs.mu.Unlock()
	})
	return nil
}

// faultFile is an open handle; all writes append (the engine's durability
// files are append-only or write-once).
type faultFile struct {
	fs     *FaultFS
	f      *memFile
	name   string
	closed bool
}

func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	n := len(p)
	var ferr error
	if f := h.fs.consult(Op{Kind: OpWrite, Path: h.name, N: len(p)}); f != nil && f.Err != nil {
		// A failing write may still tear Partial bytes onto the page cache.
		n = f.Partial
		if n > len(p) {
			n = len(p)
		}
		ferr = &os.PathError{Op: "write", Path: h.name, Err: f.Err}
	}
	if n > 0 {
		h.fs.applyWrite(h.f, p[:n])
		h.fs.note(histOp{op: Op{Kind: OpWrite, Path: h.name, N: n}, data: append([]byte(nil), p[:n]...)})
	}
	return n, ferr
}

func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	if f := h.fs.consult(Op{Kind: OpSync, Path: h.name}); f != nil {
		if f.Err != nil {
			return &os.PathError{Op: "sync", Path: h.name, Err: f.Err}
		}
		if f.LieSync {
			return nil // reported durable, nothing persisted
		}
	}
	h.fs.applySync(h.f)
	h.fs.note(histOp{op: Op{Kind: OpSync, Path: h.name}})
	return nil
}

func (h *faultFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	h.closed = true
	return nil
}

func (h *faultFile) Name() string { return h.name }

func (h *faultFile) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	return int64(len(h.f.data)), nil
}

// --- model mutations (caller holds mu) ---

func (m *FaultFS) applyCreate(name string) *memFile {
	f := m.applyCreateUnlogged(name)
	m.note(histOp{op: Op{Kind: OpOpen, Path: name}})
	return f
}

func (m *FaultFS) applyCreateUnlogged(name string) *memFile {
	f := &memFile{name: name}
	m.files[name] = f
	return f
}

func (m *FaultFS) applyWrite(f *memFile, p []byte) {
	f.data = append(f.data, p...)
}

func (m *FaultFS) applySync(f *memFile) {
	f.synced = len(f.data)
	f.durName = f.name
}

func (m *FaultFS) applyTruncate(f *memFile, size int64) {
	if size < 0 {
		size = 0
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
	}
	if f.synced > int(size) {
		f.synced = int(size)
	}
}

func (m *FaultFS) applyRename(oldpath, newpath string) {
	f := m.files[oldpath]
	if dest := m.files[newpath]; dest != nil && dest != f {
		m.ghost(dest)
	}
	delete(m.files, oldpath)
	f.name = newpath // durName still points at oldpath until fsync/SyncDir
	m.files[newpath] = f
}

func (m *FaultFS) applyRemove(name string) {
	f := m.files[name]
	delete(m.files, name)
	f.name = ""
	m.ghost(f)
}

// ghost parks a file whose live dentry is gone but whose durable dentry may
// survive a crash until the directory is synced.
func (m *FaultFS) ghost(f *memFile) {
	if f.durName != "" {
		m.ghosts = append(m.ghosts, f)
	}
}

func (m *FaultFS) applySyncDir(dir string) {
	dir = filepath.Clean(dir)
	for _, f := range m.files {
		if filepath.Dir(f.name) == dir {
			f.durName = f.name
		}
	}
	// Completed removes and renames in this dir are now durable: ghosts
	// whose stale dentry lives here stop resurrecting.
	kept := m.ghosts[:0]
	for _, g := range m.ghosts {
		if filepath.Dir(g.durName) == dir {
			continue
		}
		kept = append(kept, g)
	}
	m.ghosts = kept
}

// --- crash imaging ---

// CrashImage reconstructs the filesystem a fresh process would find after a
// crash right now, under the given tear policy. Seed drives TearPartial's
// per-file tear offsets. The image is fully durable (as if every surviving
// byte were fsynced) and holds no locks.
func (m *FaultFS) CrashImage(policy TearPolicy, seed int64) *FaultFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashImageLocked(policy, seed)
}

func (m *FaultFS) crashImageLocked(policy TearPolicy, seed int64) *FaultFS {
	img := NewFaultFS()
	add := func(name string, data []byte) {
		cp := make([]byte, len(data))
		copy(cp, data)
		img.files[name] = &memFile{name: name, data: cp, synced: len(cp), durName: name}
	}
	if policy == TearKill {
		for name, f := range m.files {
			add(name, f.data)
		}
		return img
	}
	// Power loss: the page cache is gone. Survivors appear under their
	// durable dentry with their durable content plus, under TearPartial, a
	// seeded prefix of the unsynced tail. Ghosts resurrect first so a live
	// file that reused the name wins.
	keep := func(f *memFile) []byte {
		n := f.synced
		if policy == TearPartial && len(f.data) > n {
			r := rand.New(rand.NewSource(seed ^ int64(len(f.data))<<20 ^ pathSeed(f.durName)))
			n += r.Intn(len(f.data) - n + 1)
		}
		return f.data[:n]
	}
	for _, g := range m.ghosts {
		add(g.durName, keep(g))
	}
	for _, f := range m.files {
		if f.durName == "" {
			continue
		}
		add(f.durName, keep(f))
	}
	return img
}

func pathSeed(s string) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ int64(s[i])) * 1099511628211
	}
	return h
}

// ImageAt replays the first step mutating operations of the recorded
// history into a fresh model and returns its crash image: the disk a
// process would find if power were lost after exactly that many operations
// reached the page cache. RecordHistory must have been on for the whole
// run. step ranges from 0 (nothing happened) to Steps() (everything did).
func (m *FaultFS) ImageAt(step int, policy TearPolicy, seed int64) (*FaultFS, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.record {
		return nil, fmt.Errorf("vfs: ImageAt requires RecordHistory(true)")
	}
	if step < 0 || step > len(m.hist) {
		return nil, fmt.Errorf("vfs: step %d out of range [0, %d]", step, len(m.hist))
	}
	model := NewFaultFS()
	for _, h := range m.hist[:step] {
		switch h.op.Kind {
		case OpOpen, OpCreateTemp:
			if model.files[h.op.Path] == nil {
				model.applyCreateUnlogged(h.op.Path)
			}
		case OpWrite:
			if f := model.files[h.op.Path]; f != nil {
				model.applyWrite(f, h.data)
			}
		case OpSync:
			if f := model.files[h.op.Path]; f != nil {
				model.applySync(f)
			}
		case OpSyncDir:
			model.applySyncDir(h.op.Path)
		case OpRename:
			if model.files[h.op.From] != nil {
				model.applyRename(h.op.From, h.op.Path)
			}
		case OpRemove:
			if model.files[h.op.Path] != nil {
				model.applyRemove(h.op.Path)
			}
		case OpTruncate:
			if f := model.files[h.op.Path]; f != nil {
				model.applyTruncate(f, h.size)
			}
		}
	}
	return model.crashImageLocked(policy, seed), nil
}

var _ FS = (*FaultFS)(nil)
