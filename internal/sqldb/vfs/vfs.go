// Package vfs is the filesystem seam under the durability stack. Every file
// operation the WAL, snapshot writer, and recovery path perform goes through
// the FS interface, so tests can swap the real filesystem (OS) for a
// fault-injecting in-memory model (FaultFS) that returns errors at chosen
// I/O points, lies about fsync, tears writes at arbitrary byte offsets, and
// reconstructs what the disk would hold after a power loss — honoring the
// distinction between data in the page cache and data that was fsynced.
package vfs

import (
	"os"
	"path/filepath"
	"syscall"
)

// FS is the set of filesystem operations the durability stack uses. It is
// deliberately narrow: append-oriented file writes, atomic rename, directory
// listing/sync, and an exclusive advisory lock.
type FS interface {
	// MkdirAll creates dir (and parents) if missing.
	MkdirAll(dir string) error
	// OpenFile opens name with os.OpenFile semantics for the flag subset the
	// engine uses (O_CREATE, O_WRONLY, O_RDWR, O_APPEND, O_TRUNC).
	OpenFile(name string, flag int) (File, error)
	// CreateTemp creates a uniquely named file in dir from pattern (a single
	// "*" is replaced), as os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names (not directories) directly inside dir.
	ReadDir(dir string) ([]string, error)
	// Rename atomically renames oldpath to newpath, replacing any existing
	// file. Durability of the rename itself requires SyncDir.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory, making completed creates, renames, and
	// removes inside it durable.
	SyncDir(dir string) error
	// Lock takes an exclusive advisory lock on name (creating it if needed),
	// failing immediately if another holder has it. The lock dies with the
	// process — a crash never strands it.
	Lock(name string) (Unlocker, error)
}

// File is one open file handle.
type File interface {
	Write(p []byte) (int, error)
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	Close() error
	Name() string
	// Size reports the file's current length in bytes.
	Size() (int64, error)
}

// Unlocker releases a lock taken with FS.Lock.
type Unlocker interface {
	Unlock() error
}

// Open flags, mirroring package os so FS users need no os import of their
// own (keeping the durability stack free of direct os references).
const (
	O_CREATE = os.O_CREATE
	O_WRONLY = os.O_WRONLY
	O_RDWR   = os.O_RDWR
	O_APPEND = os.O_APPEND
	O_TRUNC  = os.O_TRUNC
)

// OS returns the passthrough filesystem backed by the real OS.
func OS() FS { return osFS{} }

// osFS is the production FS: thin wrappers over package os plus flock.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) OpenFile(name string, flag int) (File, error) {
	f, err := os.OpenFile(name, flag, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (osFS) Lock(name string) (Unlocker, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, &LockHeldError{Path: name}
	}
	return &osLock{f: f}, nil
}

// LockHeldError reports that FS.Lock found the lock already held (by another
// process for osFS, another open handle for FaultFS).
type LockHeldError struct{ Path string }

func (e *LockHeldError) Error() string {
	return "vfs: lock on " + e.Path + " is held by another holder"
}

type osFile struct{ f *os.File }

func (o osFile) Write(p []byte) (int, error) { return o.f.Write(p) }
func (o osFile) Sync() error                 { return o.f.Sync() }
func (o osFile) Close() error                { return o.f.Close() }
func (o osFile) Name() string                { return o.f.Name() }
func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

type osLock struct{ f *os.File }

func (l *osLock) Unlock() error {
	_ = syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	return l.f.Close()
}

var _ FS = osFS{}
