package vfs

import (
	"errors"
	"os"
	"testing"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func writeAll(t *testing.T, fs FS, name string, data []byte, sync bool) {
	t.Helper()
	f, err := fs.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND)
	must(t, err)
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if sync {
		must(t, f.Sync())
	}
	must(t, f.Close())
}

func readAll(t *testing.T, fs FS, name string) []byte {
	t.Helper()
	b, err := fs.ReadFile(name)
	must(t, err)
	return b
}

// Unsynced data survives a kill but not a power loss.
func TestFaultFSPageCacheVsSynced(t *testing.T) {
	m := NewFaultFS()
	f, err := m.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY)
	must(t, err)
	_, err = f.Write([]byte("durable"))
	must(t, err)
	must(t, f.Sync())
	_, err = f.Write([]byte("+cache"))
	must(t, err)
	must(t, f.Close())

	kill := m.CrashImage(TearKill, 1)
	if got := string(readAll(t, kill, "/d/a")); got != "durable+cache" {
		t.Fatalf("kill image = %q", got)
	}
	loss := m.CrashImage(TearLoseUnsynced, 1)
	if got := string(readAll(t, loss, "/d/a")); got != "durable" {
		t.Fatalf("power-loss image = %q", got)
	}
	torn := m.CrashImage(TearPartial, 7)
	got := string(readAll(t, torn, "/d/a"))
	if len(got) < len("durable") || len(got) > len("durable+cache") || got != "durable+cache"[:len(got)] {
		t.Fatalf("torn image = %q, want prefix of %q no shorter than synced part", got, "durable+cache")
	}
	// Same seed → same tear; different seed may differ but stays in range.
	torn2 := m.CrashImage(TearPartial, 7)
	if string(readAll(t, torn2, "/d/a")) != got {
		t.Fatal("torn image not deterministic for fixed seed")
	}
}

// A file created and written but never synced (and its dir never synced)
// does not exist after power loss.
func TestFaultFSUnsyncedFileVanishes(t *testing.T) {
	m := NewFaultFS()
	writeAll(t, m, "/d/new", []byte("x"), false)
	loss := m.CrashImage(TearLoseUnsynced, 1)
	if _, err := loss.ReadFile("/d/new"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("unsynced file should vanish on power loss, err=%v", err)
	}
	kill := m.CrashImage(TearKill, 1)
	if _, err := kill.ReadFile("/d/new"); err != nil {
		t.Fatalf("unsynced file should survive a kill: %v", err)
	}
}

// A removed-but-not-dir-synced file resurrects after power loss; after
// SyncDir it stays gone.
func TestFaultFSRemoveGhost(t *testing.T) {
	m := NewFaultFS()
	writeAll(t, m, "/d/seg", []byte("old"), true)
	must(t, m.Remove("/d/seg"))

	loss := m.CrashImage(TearLoseUnsynced, 1)
	if got := string(readAll(t, loss, "/d/seg")); got != "old" {
		t.Fatalf("ghost should resurrect with durable content, got %q", got)
	}
	must(t, m.SyncDir("/d"))
	loss = m.CrashImage(TearLoseUnsynced, 1)
	if _, err := loss.ReadFile("/d/seg"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("after SyncDir the remove is durable, err=%v", err)
	}
}

// Rename is atomic in the live view but needs SyncDir to be durable: before
// the dir sync a power loss shows the file under its old name.
func TestFaultFSRenameDurability(t *testing.T) {
	m := NewFaultFS()
	writeAll(t, m, "/d/snap.tmp", []byte("snapshot"), true)
	must(t, m.Rename("/d/snap.tmp", "/d/snap-1"))

	if got := string(readAll(t, m, "/d/snap-1")); got != "snapshot" {
		t.Fatalf("live view after rename = %q", got)
	}
	loss := m.CrashImage(TearLoseUnsynced, 1)
	if _, err := loss.ReadFile("/d/snap-1"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("rename should not be durable before SyncDir")
	}
	if got := string(readAll(t, loss, "/d/snap.tmp")); got != "snapshot" {
		t.Fatalf("old dentry should survive, got %q", got)
	}

	must(t, m.SyncDir("/d"))
	loss = m.CrashImage(TearLoseUnsynced, 1)
	if got := string(readAll(t, loss, "/d/snap-1")); got != "snapshot" {
		t.Fatalf("rename durable after SyncDir, got %q", got)
	}
	if _, err := loss.ReadFile("/d/snap.tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("old dentry gone after SyncDir")
	}
}

// Rename over an existing synced file: until SyncDir, power loss shows the
// replaced file's durable content under the destination name.
func TestFaultFSRenameOverGhost(t *testing.T) {
	m := NewFaultFS()
	writeAll(t, m, "/d/cur", []byte("v1"), true)
	must(t, m.SyncDir("/d"))
	writeAll(t, m, "/d/next", []byte("v2"), true)
	must(t, m.Rename("/d/next", "/d/cur"))

	if got := string(readAll(t, m, "/d/cur")); got != "v2" {
		t.Fatalf("live = %q", got)
	}
	loss := m.CrashImage(TearLoseUnsynced, 1)
	// v2 was fsynced under /d/next; the rename isn't durable, so the crash
	// image holds v1 at /d/cur and v2 at /d/next.
	if got := string(readAll(t, loss, "/d/cur")); got != "v1" {
		t.Fatalf("pre-dir-sync crash: /d/cur = %q, want v1", got)
	}
	if got := string(readAll(t, loss, "/d/next")); got != "v2" {
		t.Fatalf("pre-dir-sync crash: /d/next = %q, want v2", got)
	}
	must(t, m.SyncDir("/d"))
	loss = m.CrashImage(TearLoseUnsynced, 1)
	if got := string(readAll(t, loss, "/d/cur")); got != "v2" {
		t.Fatalf("post-dir-sync crash: /d/cur = %q, want v2", got)
	}
	if _, err := loss.ReadFile("/d/next"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("post-dir-sync crash: /d/next should be gone")
	}
}

// A lied-about fsync reports success but leaves nothing durable.
func TestFaultFSLieSync(t *testing.T) {
	m := NewFaultFS()
	m.SetHook(func(op Op) *Fault {
		if op.Kind == OpSync || op.Kind == OpSyncDir {
			return &Fault{LieSync: true}
		}
		return nil
	})
	writeAll(t, m, "/d/a", []byte("hello"), true) // Sync "succeeds"
	loss := m.CrashImage(TearLoseUnsynced, 1)
	if _, err := loss.ReadFile("/d/a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("lied fsync must not persist anything")
	}
}

// A failing write can tear: Partial bytes land, the rest do not, and the
// caller sees the error.
func TestFaultFSPartialWrite(t *testing.T) {
	m := NewFaultFS()
	enospc := errors.New("no space left on device")
	m.SetHook(func(op Op) *Fault {
		if op.Kind == OpWrite {
			return &Fault{Err: enospc, Partial: 3}
		}
		return nil
	})
	f, err := m.OpenFile("/d/a", os.O_CREATE|os.O_WRONLY)
	must(t, err)
	n, werr := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(werr, enospc) {
		t.Fatalf("n=%d err=%v", n, werr)
	}
	m.SetHook(nil)
	if got := string(readAll(t, m, "/d/a")); got != "abc" {
		t.Fatalf("page cache = %q", got)
	}
}

// ImageAt replays history: the image at step k matches a crash image taken
// live at that moment.
func TestFaultFSImageAt(t *testing.T) {
	m := NewFaultFS()
	m.RecordHistory(true)
	writeAll(t, m, "/d/a", []byte("one"), true)
	s1 := m.Steps()
	img1 := m.CrashImage(TearLoseUnsynced, 1)
	writeAll(t, m, "/d/a", []byte("two"), true)
	must(t, m.Remove("/d/a"))
	must(t, m.SyncDir("/d"))

	at1, err := m.ImageAt(s1, TearLoseUnsynced, 1)
	must(t, err)
	want := string(readAll(t, img1, "/d/a"))
	if got := string(readAll(t, at1, "/d/a")); got != want {
		t.Fatalf("ImageAt(%d) = %q, want %q", s1, got, want)
	}
	end, err := m.ImageAt(m.Steps(), TearLoseUnsynced, 1)
	must(t, err)
	if _, err := end.ReadFile("/d/a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("final image should have no /d/a")
	}
	if _, err := m.ImageAt(m.Steps()+1, TearKill, 1); err == nil {
		t.Fatal("out-of-range step should error")
	}
}

// Truncate cuts both the page cache and the synced prefix.
func TestFaultFSTruncate(t *testing.T) {
	m := NewFaultFS()
	writeAll(t, m, "/d/a", []byte("abcdef"), true)
	must(t, m.Truncate("/d/a", 2))
	loss := m.CrashImage(TearLoseUnsynced, 1)
	if got := string(readAll(t, loss, "/d/a")); got != "ab" {
		t.Fatalf("after truncate, durable = %q", got)
	}
}

// Lock excludes a second holder until released; both FaultFS and osFS obey
// the same contract.
func TestLockContract(t *testing.T) {
	for _, tc := range []struct {
		name string
		fs   FS
		path string
	}{
		{"fault", NewFaultFS(), "/d/LOCK"},
		{"os", OS(), t.TempDir() + "/LOCK"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, err := tc.fs.Lock(tc.path)
			must(t, err)
			if _, err := tc.fs.Lock(tc.path); err == nil {
				t.Fatal("second Lock should fail while held")
			} else {
				var held *LockHeldError
				if tc.name == "fault" && !errors.As(err, &held) {
					t.Fatalf("want LockHeldError, got %v", err)
				}
			}
			must(t, l.Unlock())
			l2, err := tc.fs.Lock(tc.path)
			must(t, err)
			must(t, l2.Unlock())
		})
	}
}

// ReadDir lists only files directly in the directory, sorted.
func TestFaultFSReadDir(t *testing.T) {
	m := NewFaultFS()
	writeAll(t, m, "/d/b", nil, false)
	writeAll(t, m, "/d/a", nil, false)
	writeAll(t, m, "/d/sub/c", nil, false)
	names, err := m.ReadDir("/d")
	must(t, err)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("ReadDir = %v", names)
	}
}

// CreateTemp yields unique names matching the pattern.
func TestFaultFSCreateTemp(t *testing.T) {
	m := NewFaultFS()
	f1, err := m.CreateTemp("/d", "snap-*.tmp")
	must(t, err)
	f2, err := m.CreateTemp("/d", "snap-*.tmp")
	must(t, err)
	if f1.Name() == f2.Name() {
		t.Fatalf("temp names collide: %s", f1.Name())
	}
	names, err := m.ReadDir("/d")
	must(t, err)
	if len(names) != 2 {
		t.Fatalf("ReadDir = %v", names)
	}
}
