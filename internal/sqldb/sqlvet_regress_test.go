package sqldb

// Regression tests for the real violations the sqlvet lockorder analyzer
// found on this tree (see DESIGN.md "Enforced invariants"):
//
//  1. wal.commit used to write+fsync inline in always mode, so commitLocked
//     performed file I/O under Engine.mu. Now commit only enqueues and the
//     first token waiter flushes — these tests pin the durability semantics
//     that refactor must preserve.
//  2. logGrantsBatched used to wait on the WAL under the engine write lock;
//     the token is now parked on the session and waited after unlock.
//  3. Checkpoint used to hold Engine.mu across the rotation fsync and
//     snapshot encoding; it now quiesces writers through the lock manager
//     and shares the read lock, so readers keep running.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"bridgescope/internal/sqldb/vfs"
)

// maxDiskLSN parses every WAL segment in dir and returns the highest LSN
// that is fully on disk (torn tails stop the scan of a segment, matching
// replay).
func maxDiskLSN(t *testing.T, dir string) uint64 {
	t.Helper()
	segs, err := listNumbered(vfs.OS(), dir, "wal", ".log")
	if err != nil {
		t.Fatal(err)
	}
	var max uint64
	for _, seg := range segs {
		b, err := os.ReadFile(segPath(dir, seg))
		if err != nil {
			t.Fatal(err)
		}
		for len(b) > 0 {
			payload, size, err := readFrame(b)
			if err != nil {
				break
			}
			lsn, _, err := decodeFramePayload(payload)
			if err != nil {
				break
			}
			if lsn > max {
				max = lsn
			}
			b = b[size:]
		}
	}
	return max
}

// TestSyncAlwaysDurableBeforeAck: in always mode every acknowledged commit
// must be on disk by the time the statement returns — even though the
// write+fsync moved out of commit() into the token wait. A frame that only
// ever lived in the in-memory pending buffer would vanish in a crash.
func TestSyncAlwaysDurableBeforeAck(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	defer e.Close()
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)

	w := e.wal.Load()
	for i := 0; i < 10; i++ {
		s.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row')`, i))
		if disk, mem := maxDiskLSN(t, dir), w.currentLSN(); disk != mem {
			t.Fatalf("after acked insert %d: disk LSN %d != wal LSN %d — acknowledged commit not durable", i, disk, mem)
		}
	}
}

// TestSyncAlwaysConcurrentCommitsShareFsyncs: always-mode committers that
// enqueue while another waiter's fsync is in flight join the next group
// flush instead of each issuing their own — the free group commit the
// enqueue/wait split buys. Every ack must still be on disk at the end.
func TestSyncAlwaysConcurrentCommitsShareFsyncs(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)

	const workers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := e.NewSession("root")
			for i := 0; i < per; i++ {
				sess.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'w')`, g*1000+i))
			}
		}(g)
	}
	wg.Wait()

	st := e.Durability()
	if st.Fsyncs == 0 || st.Fsyncs > st.Commits {
		t.Fatalf("always mode: %d fsyncs for %d commits", st.Fsyncs, st.Commits)
	}
	if disk, mem := maxDiskLSN(t, dir), e.wal.Load().currentLSN(); disk != mem {
		t.Fatalf("disk LSN %d != wal LSN %d after all commits acked", disk, mem)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := openTestEngine(t, dir, Options{Sync: SyncAlways})
	defer e2.Close()
	r := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`)
	if got := r.Rows[0][0].I; got != workers*per {
		t.Fatalf("reopened with %d rows, want %d", got, workers*per)
	}
}

// TestSyncOffPendingFlushedOnClose: off-mode commits now sit in the pending
// buffer until a waiter or close flushes them; close must write them out
// before the segment file closes or a clean shutdown would lose acked work.
func TestSyncOffPendingFlushedOnClose(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncOff})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY)`)
	s.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openTestEngine(t, dir, Options{Sync: SyncOff})
	defer e2.Close()
	if got := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`).Rows[0][0].I; got != 3 {
		t.Fatalf("reopened with %d rows, want 3", got)
	}
}

// TestConcurrentGrantsDurable: GRANT/REVOKE statements park their WAL claim
// on the session and the executor waits after every lock is released; the
// privilege records must still all reach the log, including under
// concurrency, and survive a reopen.
func TestConcurrentGrantsDurable(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncAlways})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)

	const workers, per = 4, 10
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := e.NewSession("root")
			for i := 0; i < per; i++ {
				sess.MustExec(fmt.Sprintf(`GRANT SELECT, INSERT ON t TO user_%d_%d`, g, i))
			}
			sess.MustExec(fmt.Sprintf(`REVOKE INSERT ON t FROM user_%d_0`, g))
		}(g)
	}
	wg.Wait()

	// Every acknowledged grant frame is on disk before close (always mode).
	if disk, mem := maxDiskLSN(t, dir), e.wal.Load().currentLSN(); disk != mem {
		t.Fatalf("disk LSN %d != wal LSN %d after grants acked", disk, mem)
	}

	want := dumpEngine(e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openTestEngine(t, dir, Options{Sync: SyncAlways})
	defer e2.Close()
	if got := dumpEngine(e2); got != want {
		t.Fatalf("grants did not survive reopen:\nbefore:\n%s\nafter:\n%s", want, got)
	}
}

// TestCheckpointConcurrentWithReadersAndWriters: Checkpoint no longer holds
// Engine.mu across the rotation fsync and snapshot encoding — it quiesces
// writers via the lock manager and shares the read lock. Readers and
// writers interleaved with repeated checkpoints must neither deadlock nor
// lose acknowledged commits across a reopen.
func TestCheckpointConcurrentWithReadersAndWriters(t *testing.T) {
	dir := t.TempDir()
	e := openTestEngine(t, dir, Options{Sync: SyncBatch})
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)

	const writers, per = 3, 40
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := e.NewSession("root")
			for i := 0; i < per; i++ {
				sess.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'w')`, g*1000+i))
			}
		}(g)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := e.NewSession("root")
			for i := 0; i < 60; i++ {
				sess.MustExec(`SELECT COUNT(*) FROM t`)
			}
		}()
	}
	stop := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		for {
			select {
			case <-stop:
				return
			default:
				if err := e.Checkpoint(); err != nil {
					t.Errorf("Checkpoint: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-ckptDone

	if st := e.Durability(); st.Checkpoints == 0 {
		t.Fatal("checkpointer never completed a checkpoint")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openTestEngine(t, dir, Options{Sync: SyncBatch})
	defer e2.Close()
	if got := e2.NewSession("root").MustExec(`SELECT COUNT(*) FROM t`).Rows[0][0].I; got != writers*per {
		t.Fatalf("reopened with %d rows, want %d", got, writers*per)
	}
}
