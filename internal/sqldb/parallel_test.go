package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// newParallelEngine builds an engine with aggressive parallel settings (4
// workers, 64-row threshold so modest test tables exercise the morsel paths)
// and two randomized tables.
func newParallelEngine(t testing.TB, seed int64) *Engine {
	t.Helper()
	e := NewEngine("partest")
	e.SetParallelism(4, 64)
	s := e.NewSession("root")
	s.MustExec("CREATE TABLE t1 (id INT PRIMARY KEY, grp INT, val REAL, name TEXT)")
	s.MustExec("CREATE TABLE t2 (id INT PRIMARY KEY, grp INT, tag TEXT)")
	rng := rand.New(rand.NewSource(seed))
	names := []string{"'alpha'", "'beta'", "'gamma'", "'delta'", "NULL"}
	tags := []string{"'x'", "'y'", "'z'", "NULL"}
	insertBatch(s, "t1", 3000, func(i int) string {
		return fmt.Sprintf("(%d, %d, %g, %s)", i, rng.Intn(20), float64(rng.Intn(10000))/10, names[rng.Intn(len(names))])
	})
	insertBatch(s, "t2", 500, func(i int) string {
		return fmt.Sprintf("(%d, %d, %s)", i, rng.Intn(20), tags[rng.Intn(len(tags))])
	})
	return e
}

func insertBatch(s *Session, table string, n int, row func(i int) string) {
	const batch = 500
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		vals := make([]string, 0, end-start)
		for i := start; i < end; i++ {
			vals = append(vals, row(i))
		}
		s.MustExec("INSERT INTO " + table + " VALUES " + strings.Join(vals, ", "))
	}
}

// equivalenceQueries covers every operator the batched path touches —
// filters (including expressions the binder must clone correctly), joins,
// GROUP BY/HAVING/aggregates, DISTINCT, ORDER BY both pushed and unpushed,
// and subquery predicates that must fall back to the sequential path.
var equivalenceQueries = []string{
	"SELECT * FROM t1 WHERE val < 500.0",
	"SELECT id, val * 2 + 1 FROM t1 WHERE grp % 3 = 1 AND name IS NOT NULL",
	"SELECT name FROM t1 WHERE name LIKE 'a%'",
	"SELECT id FROM t1 WHERE grp IN (1, 2, 3) AND val BETWEEN 100.0 AND 400.0",
	"SELECT UPPER(name), LENGTH(name) FROM t1 WHERE name IS NOT NULL AND grp < 10",
	"SELECT CASE WHEN val < 500.0 THEN 'lo' ELSE 'hi' END, id FROM t1 WHERE grp = 4",
	"SELECT id + val FROM t1",
	"SELECT grp, COUNT(*), SUM(val), AVG(val), MIN(val), MAX(name) FROM t1 GROUP BY grp HAVING COUNT(*) > 3",
	"SELECT COUNT(DISTINCT grp) FROM t1",
	"SELECT COUNT(*) FROM t1 WHERE val < 250.0",
	"SELECT grp, COUNT(*) FROM t1 WHERE name IS NOT NULL GROUP BY grp ORDER BY grp",
	"SELECT DISTINCT grp FROM t1",
	"SELECT DISTINCT grp, name FROM t1 WHERE val < 700.0",
	"SELECT t1.id, t2.tag FROM t1 JOIN t2 ON t1.grp = t2.grp WHERE t2.id < 40",
	"SELECT COUNT(*) FROM t1 JOIN t2 ON t1.grp = t2.grp",
	"SELECT t1.id, t2.tag FROM t1 LEFT JOIN t2 ON t1.id = t2.id WHERE t1.val < 200.0",
	"SELECT id FROM t1 WHERE grp = 7 ORDER BY id",
	"SELECT id, val FROM t1 WHERE val < 300.0 ORDER BY val DESC LIMIT 7",
	"SELECT grp, val FROM t1 WHERE id IN (SELECT id FROM t2 WHERE tag IS NOT NULL) ORDER BY grp, val LIMIT 25",
	"SELECT val FROM t1 ORDER BY 1 LIMIT 10",
}

// TestParallelSequentialEquivalence runs every query three ways — parallel
// (default session), batched-off (SetParallel(false)), and the forced
// seq-scan baseline — and requires identical columns and rows. Run with
// -race this doubles as the data-race check on the morsel workers.
func TestParallelSequentialEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		e := newParallelEngine(t, seed)
		par := e.NewSession("root")
		seq := e.NewSession("root")
		seq.SetParallel(false)
		forced := e.NewSession("root")
		forced.forceSeqScan = true
		for _, q := range equivalenceQueries {
			want, wantErr := seq.Exec(q)
			got, gotErr := par.Exec(q)
			fres, ferr := forced.Exec(q)
			if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && wantErr.Error() != gotErr.Error()) {
				t.Fatalf("seed %d query %q: parallel err %v, sequential err %v", seed, q, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if ferr != nil {
				t.Fatalf("seed %d query %q: forced err %v", seed, q, ferr)
			}
			if !reflect.DeepEqual(got.Columns, want.Columns) {
				t.Fatalf("seed %d query %q: columns %v != %v", seed, q, got.Columns, want.Columns)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Fatalf("seed %d query %q: %d parallel rows != %d sequential rows", seed, q, len(got.Rows), len(want.Rows))
			}
			if !reflect.DeepEqual(got.Rows, fres.Rows) {
				t.Fatalf("seed %d query %q: parallel rows differ from forced seq-scan rows", seed, q)
			}
		}
	}
}

// TestParallelErrorEquivalence: a predicate that errors mid-scan must report
// the same error on both paths (the parallel scan returns the lowest-morsel
// error, which is the first one the sequential scan would hit).
func TestParallelErrorEquivalence(t *testing.T) {
	e := newParallelEngine(t, 7)
	par := e.NewSession("root")
	seq := e.NewSession("root")
	seq.SetParallel(false)
	q := "SELECT id FROM t1 WHERE val / (id - 10) > 1.0"
	_, wantErr := seq.Exec(q)
	_, gotErr := par.Exec(q)
	if wantErr == nil || gotErr == nil {
		t.Fatalf("both paths should error: parallel %v, sequential %v", gotErr, wantErr)
	}
	if wantErr.Error() != gotErr.Error() {
		t.Fatalf("error mismatch: parallel %q, sequential %q", gotErr, wantErr)
	}
}

// TestParallelExplain checks the planner's gating: a big table renders a
// Parallel Seq Scan with the worker count, a small table and a
// parallelism-off session stay sequential, and ORDER BY pushdown (ordered
// index scan) never parallelizes.
func TestParallelExplain(t *testing.T) {
	e := newParallelEngine(t, 3)
	s := e.NewSession("root")
	s.MustExec("CREATE TABLE tiny (id INT PRIMARY KEY, v INT)")
	s.MustExec("INSERT INTO tiny VALUES (1, 10), (2, 20)")

	text := s.MustExec("EXPLAIN SELECT * FROM t1 WHERE val < 10.0").Text()
	if !strings.Contains(text, "Parallel Seq Scan on t1 (workers: 4)") {
		t.Fatalf("big-table scan should be parallel:\n%s", text)
	}
	text = s.MustExec("EXPLAIN SELECT * FROM tiny WHERE v = 10").Text()
	if strings.Contains(text, "Parallel") {
		t.Fatalf("scan under the row threshold should stay sequential:\n%s", text)
	}
	text = s.MustExec("EXPLAIN SELECT id FROM t1 ORDER BY id LIMIT 5").Text()
	if strings.Contains(text, "Parallel") {
		t.Fatalf("ordered (pushed-down) scan must stay sequential:\n%s", text)
	}

	off := e.NewSession("root")
	off.SetParallel(false)
	text = off.MustExec("EXPLAIN SELECT * FROM t1 WHERE val < 10.0").Text()
	if strings.Contains(text, "Parallel") {
		t.Fatalf("session with parallelism off should plan sequential scans:\n%s", text)
	}
}

// TestParallelScanCountsVisitedRows: the fused morsel scan must keep the
// scan-rows accounting of the sequential path (visible rows, pre-filter).
func TestParallelScanCountsVisitedRows(t *testing.T) {
	e := newParallelEngine(t, 11)
	s := e.NewSession("root")
	before := e.ScanRowsVisited()
	s.MustExec("SELECT COUNT(*) FROM t1 WHERE val < 1.0")
	visited := e.ScanRowsVisited() - before
	if visited != 3000 {
		t.Fatalf("parallel scan visited %d rows, want 3000 (all visible rows, pre-filter)", visited)
	}
}
