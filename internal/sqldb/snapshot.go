package sqldb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"bridgescope/internal/sqldb/vfs"
)

// A snapshot is a point-in-time copy of the whole catalog — grants, tables
// (schema + rows + index definitions), and views — plus the WAL segment
// number recovery should start replaying from. Layout:
//
//	magic | uvarint walSeg | grants | tables | views | u32 CRC-32 of all prior bytes
//
// Snapshots are written to a temp file and renamed into place, so a crash
// mid-checkpoint leaves the previous snapshot (or none) intact, and the CRC
// rejects any partially persisted file.
const snapMagic = "SQLDBSNAP1"

// encodeSnapshot serializes the engine's full state. The caller holds the
// engine write lock, so the encoded buffer is a consistent copy that can be
// written to disk after the lock is released.
func encodeSnapshot(e *Engine, walSeg uint64) []byte {
	b := []byte(snapMagic)
	b = binary.AppendUvarint(b, walSeg)

	changes := e.grants.dump()
	b = binary.AppendUvarint(b, uint64(len(changes)))
	for _, ch := range changes {
		b = appendString(b, "") // reserved per-change header (future versioning)
		b = append(b, encodeGrantRec(ch)...)
	}

	b = binary.AppendUvarint(b, uint64(len(e.tableOrder)))
	for _, lo := range e.tableOrder {
		b = appendTableSnap(b, e.tables[lo])
	}

	b = binary.AppendUvarint(b, uint64(len(e.viewOrder)))
	for _, lo := range e.viewOrder {
		b = appendString(b, ViewSQL(e.views[lo]))
	}

	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

func appendTableSnap(b []byte, t *Table) []byte {
	b = appendString(b, t.Name)
	b = binary.AppendUvarint(b, t.epoch)

	b = binary.AppendUvarint(b, uint64(len(t.Columns)))
	for _, c := range t.Columns {
		b = appendString(b, c.Name)
		b = append(b, byte(c.Type))
		flags := byte(0)
		if c.NotNull {
			flags |= 1
		}
		if c.PrimaryKey {
			flags |= 2
		}
		if c.Unique {
			flags |= 4
		}
		b = append(b, flags)
		def := ""
		if c.Default != nil {
			def = c.Default.String()
		}
		b = appendString(b, def)
	}

	b = binary.AppendUvarint(b, uint64(len(t.PrimaryKey)))
	for _, c := range t.PrimaryKey {
		b = appendString(b, c)
	}

	b = binary.AppendUvarint(b, uint64(len(t.ForeignKeys)))
	for _, fk := range t.ForeignKeys {
		b = binary.AppendUvarint(b, uint64(len(fk.Columns)))
		for _, c := range fk.Columns {
			b = appendString(b, c)
		}
		b = appendString(b, fk.ParentTable)
		b = binary.AppendUvarint(b, uint64(len(fk.ParentColumns)))
		for _, c := range fk.ParentColumns {
			b = appendString(b, c)
		}
	}

	b = binary.AppendUvarint(b, uint64(len(t.indexes)))
	for _, ix := range t.indexes {
		b = appendString(b, ix.Name)
		b = appendString(b, ix.Column)
		if ix.Unique {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}

	b = binary.AppendVarint(b, t.nextID)
	// Serialize the latest committed-visible version of each row:
	// uncommitted transactions contribute nothing (their redo frames, if
	// they ever commit, land after the checkpoint's WAL rotation and replay
	// on top of this state), which is what makes checkpointing safe while
	// transactions are open.
	type snapRow struct {
		id   int64
		vals []Value
	}
	var live []snapRow
	_ = t.visibleRows(latestView(nil), func(r *rowEntry, rv *rowVersion) error {
		live = append(live, snapRow{id: r.id, vals: rv.vals})
		return nil
	})
	b = binary.AppendUvarint(b, uint64(len(live)))
	for _, r := range live {
		b = binary.AppendVarint(b, r.id)
		for _, v := range r.vals {
			b = appendValue(b, v)
		}
	}
	return b
}

// loadSnapshot verifies and applies snapshot bytes to an empty engine,
// returning the WAL segment replay should start from. Index and PK
// structures are bulk-built after the rows are loaded (hash everything, one
// sort over the distinct values) rather than maintained per row.
func loadSnapshot(e *Engine, data []byte) (walSeg uint64, err error) {
	if len(data) < len(snapMagic)+4 {
		return 0, fmt.Errorf("snapshot: file too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("snapshot: CRC mismatch")
	}
	if string(body[:len(snapMagic)]) != snapMagic {
		return 0, fmt.Errorf("snapshot: bad magic")
	}
	r := &walReader{b: body[len(snapMagic):]}

	walSeg = r.uvarint()

	nGrants := r.uvarint()
	for i := uint64(0); i < nGrants && r.err == nil; i++ {
		_ = r.str() // reserved header
		if typ := r.byte(); typ != recGrant {
			r.fail("snapshot: expected grant record, got type %d", typ)
			break
		}
		ch := decodeGrantChange(r)
		if r.err == nil {
			e.grants.apply(ch)
		}
	}

	nTables := r.uvarint()
	for i := uint64(0); i < nTables && r.err == nil; i++ {
		if err := loadTableSnap(e, r); err != nil {
			return 0, err
		}
	}

	nViews := r.uvarint()
	for i := uint64(0); i < nViews && r.err == nil; i++ {
		sql := r.str()
		if r.err != nil {
			break
		}
		stmts, err := ParseScript(sql)
		if err != nil || len(stmts) != 1 {
			return 0, fmt.Errorf("snapshot: bad view DDL %q: %v", sql, err)
		}
		cv, ok := stmts[0].(*CreateViewStmt)
		if !ok {
			return 0, fmt.Errorf("snapshot: view entry is not CREATE VIEW: %q", sql)
		}
		if err := e.createView(&View{Name: cv.Name, Query: cv.Query}); err != nil {
			return 0, err
		}
	}

	if r.err != nil {
		return 0, fmt.Errorf("snapshot: %w", r.err)
	}
	return walSeg, nil
}

func loadTableSnap(e *Engine, r *walReader) error {
	name := r.str()
	epoch := r.uvarint()

	nCols := r.uvarint()
	if nCols > uint64(len(r.b)) {
		r.fail("snapshot: column count %d exceeds %d remaining bytes", nCols, len(r.b))
		return r.err
	}
	cols := make([]Column, 0, nCols)
	for i := uint64(0); i < nCols; i++ {
		c := Column{Name: r.str(), Type: Kind(r.byte())}
		flags := r.byte()
		c.NotNull = flags&1 != 0
		c.PrimaryKey = flags&2 != 0
		c.Unique = flags&4 != 0
		def := r.str()
		if r.err != nil {
			return r.err
		}
		if def != "" {
			expr, err := parseExprSQL(def)
			if err != nil {
				return fmt.Errorf("snapshot: column %s.%s default %q: %w", name, c.Name, def, err)
			}
			c.Default = expr
		}
		cols = append(cols, c)
	}

	readStrings := func() []string {
		n := r.uvarint()
		if n > uint64(len(r.b)) {
			r.fail("snapshot: list length %d exceeds %d remaining bytes", n, len(r.b))
			return nil
		}
		out := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			out = append(out, r.str())
		}
		return out
	}

	pk := readStrings()

	nFKs := r.uvarint()
	if nFKs > uint64(len(r.b)) {
		r.fail("snapshot: FK count %d exceeds %d remaining bytes", nFKs, len(r.b))
		return r.err
	}
	fks := make([]ForeignKey, 0, nFKs)
	for i := uint64(0); i < nFKs; i++ {
		fk := ForeignKey{Columns: readStrings()}
		fk.ParentTable = r.str()
		fk.ParentColumns = readStrings()
		fks = append(fks, fk)
	}

	type ixDef struct {
		name, col string
		unique    bool
	}
	nIdx := r.uvarint()
	if nIdx > uint64(len(r.b)) {
		r.fail("snapshot: index count %d exceeds %d remaining bytes", nIdx, len(r.b))
		return r.err
	}
	idxs := make([]ixDef, 0, nIdx)
	for i := uint64(0); i < nIdx; i++ {
		idxs = append(idxs, ixDef{name: r.str(), col: r.str(), unique: r.byte() != 0})
	}

	nextID := r.varint()
	nRows := r.uvarint()
	if r.err != nil {
		return r.err
	}

	t, err := newTable(name, cols, pk, fks)
	if err != nil {
		return fmt.Errorf("snapshot: table %q: %w", name, err)
	}
	// Load rows raw — no per-row index/PK hooks; everything secondary is
	// bulk-built below (the ordered-index bulk build from the range-scan PR).
	if nRows <= uint64(len(r.b)) { // each row costs ≥1 byte; pre-size safely
		t.rows = make([]*rowEntry, 0, nRows)
	}
	for i := uint64(0); i < nRows; i++ {
		id := r.varint()
		vals := make([]Value, len(cols))
		for j := range vals {
			vals[j] = r.value()
		}
		if r.err != nil {
			return r.err
		}
		if t.byID[id] != nil {
			return fmt.Errorf("snapshot: duplicate row id %d in table %q", id, name)
		}
		// Snapshot rows are committed-ancient: xmin 0 is visible to every
		// snapshot the restarted engine will ever take.
		entry := &rowEntry{id: id, v: &rowVersion{vals: vals}}
		t.rows = append(t.rows, entry)
		t.byID[id] = entry
	}
	t.nextID = nextID
	t.epoch = epoch // createTable keeps it and advances the engine counter
	for _, ix := range idxs {
		if t.ColIndex(ix.col) < 0 {
			return fmt.Errorf("snapshot: index %q on missing column %q.%q", ix.name, name, ix.col)
		}
		t.addIndex(&Index{Name: ix.name, Column: ix.col, Unique: ix.unique})
	}
	t.rebuildPK()
	return e.createTable(t)
}

// parseExprSQL round-trips an expression through the SELECT grammar (the
// parser has no bare-expression entry point).
func parseExprSQL(s string) (Expr, error) {
	stmt, err := Parse("SELECT " + s)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok || len(sel.Items) != 1 || sel.Items[0].Expr == nil {
		return nil, fmt.Errorf("not a single expression")
	}
	return sel.Items[0].Expr, nil
}

// writeSnapshotFile atomically persists snapshot bytes for walSeg: temp
// file, write, fsync, rename into place, directory fsync. A failure at any
// step leaves the previous snapshot (or none) intact; the orphaned temp file
// is removed here on error and swept by the next OpenEngine after a crash.
func writeSnapshotFile(fsys vfs.FS, dir string, walSeg uint64, data []byte) error {
	tmp, err := fsys.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), snapPath(dir, walSeg)); err != nil {
		return err
	}
	// fsync the directory so the rename itself survives a crash.
	return fsys.SyncDir(dir)
}
