package mltools

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"bridgescope/internal/mcp"
)

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	// y = 3 + 2*x1 - 0.5*x2, no noise: OLS must recover it exactly.
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x1, x2 := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{x1, x2})
		y = append(y, 3+2*x1-0.5*x2)
	}
	m, err := TrainLinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3) > 1e-6 || math.Abs(m.Coef[0]-2) > 1e-6 || math.Abs(m.Coef[1]+0.5) > 1e-6 {
		t.Fatalf("coefficients wrong: %+v", m)
	}
	pred, err := m.Predict([][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred[0]-4) > 1e-6 {
		t.Fatalf("prediction wrong: %v", pred[0])
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := TrainLinearRegression(nil, nil); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := TrainLinearRegression([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched sizes must error")
	}
	m := &LinearModel{Intercept: 0, Coef: []float64{1, 2}}
	if _, err := m.Predict([][]float64{{1}}); err == nil {
		t.Fatal("wrong feature width must error")
	}
}

func TestRandomForestBeatsMeanBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []float64
	for i := 0; i < 600; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, a*a+3*b+rng.NormFloat64())
	}
	xTr, xTe, yTr, yTe, err := TrainTestSplit(x, y, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := TrainRandomForest(xTr, yTr, ForestConfig{Trees: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := f.Predict(xTe)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := R2(pred, yTe)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.7 {
		t.Fatalf("forest R2 = %.3f, expected a real fit on a learnable function", r2)
	}
}

func TestForestDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := rng.Float64() * 5
		x = append(x, []float64{a})
		y = append(y, 2*a)
	}
	f1, _ := TrainRandomForest(x, y, ForestConfig{Trees: 5, Seed: 9})
	f2, _ := TrainRandomForest(x, y, ForestConfig{Trees: 5, Seed: 9})
	p1, _ := f1.Predict(x[:10])
	p2, _ := f2.Predict(x[:10])
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed must give identical forests")
		}
	}
}

func TestZScoreProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		cols := 1 + rng.Intn(4)
		x := make([][]float64, n)
		for i := range x {
			row := make([]float64, cols)
			for j := range row {
				row[j] = rng.NormFloat64()*50 + 10
			}
			x[i] = row
		}
		norm, means, stds, err := ZScoreNormalize(x)
		if err != nil {
			return false
		}
		// Normalized columns have ~zero mean and ~unit variance.
		for j := 0; j < cols; j++ {
			var sum, sq float64
			for i := range norm {
				sum += norm[i][j]
			}
			mean := sum / float64(n)
			for i := range norm {
				d := norm[i][j] - mean
				sq += d * d
			}
			std := math.Sqrt(sq / float64(n))
			if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
				return false
			}
		}
		// ApplyZScore with the returned stats reproduces the output.
		again, err := ApplyZScore(x, means, stds)
		if err != nil {
			return false
		}
		for i := range norm {
			for j := range norm[i] {
				if math.Abs(norm[i][j]-again[i][j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestZScoreConstantColumn(t *testing.T) {
	norm, _, _, err := ZScoreNormalize([][]float64{{5, 1}, {5, 2}, {5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range norm {
		if norm[i][0] != 0 {
			t.Fatalf("constant column should normalize to 0, got %v", norm[i][0])
		}
	}
}

func TestTrainTestSplit(t *testing.T) {
	x := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = []float64{float64(i)}
		y[i] = float64(i)
	}
	xTr, xTe, yTr, yTe, err := TrainTestSplit(x, y, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(xTe) != 20 || len(xTr) != 80 || len(yTe) != 20 || len(yTr) != 80 {
		t.Fatalf("split sizes wrong: %d/%d", len(xTr), len(xTe))
	}
	// Pairing preserved.
	for i := range xTr {
		if xTr[i][0] != yTr[i] {
			t.Fatal("x/y pairing broken by split")
		}
	}
	if _, _, _, _, err := TrainTestSplit(x, y, 1.5, 1); err == nil {
		t.Fatal("bad fraction must error")
	}
}

func TestMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 3}
	rmse, err := RMSE(pred, truth)
	if err != nil || rmse != 0 {
		t.Fatalf("perfect RMSE should be 0: %v %v", rmse, err)
	}
	r2, err := R2(pred, truth)
	if err != nil || r2 != 1 {
		t.Fatalf("perfect R2 should be 1: %v %v", r2, err)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths must error")
	}
}

func TestAnalyzeTrend(t *testing.T) {
	up, err := AnalyzeTrend([]float64{1, 2, 3, 4, 5})
	if err != nil || up.Direction != "rising" {
		t.Fatalf("rising series misclassified: %+v %v", up, err)
	}
	down, _ := AnalyzeTrend([]float64{10, 8, 6, 4})
	if down.Direction != "falling" {
		t.Fatalf("falling series misclassified: %+v", down)
	}
	flat, _ := AnalyzeTrend([]float64{5, 5.001, 4.999, 5})
	if flat.Direction != "flat" {
		t.Fatalf("flat series misclassified: %+v", flat)
	}
	if _, err := AnalyzeTrend([]float64{1}); err == nil {
		t.Fatal("single point must error")
	}
}

// --- tool server ---

func serverClient(t *testing.T) *mcp.Client {
	t.Helper()
	reg := mcp.NewRegistry()
	NewServer(11).RegisterTools(reg)
	return mcp.NewClient(mcp.NewServer(reg))
}

func TestServerTrainPredictRoundTrip(t *testing.T) {
	client := serverClient(t)
	ctx := context.Background()
	features := make([]any, 0, 60)
	target := make([]any, 0, 60)
	for i := 0; i < 60; i++ {
		f := float64(i)
		features = append(features, []any{f, f * 2})
		target = append(target, 3*f+1)
	}
	res, err := client.CallTool(ctx, "train_linear_regression", map[string]any{
		"features": features, "target": target,
	})
	if err != nil || res.IsErr {
		t.Fatalf("train failed: %v %s", err, res.Text)
	}
	var out map[string]any
	if err := json.Unmarshal(res.Data, &out); err != nil {
		t.Fatal(err)
	}
	id, _ := out["model_id"].(string)
	if id == "" {
		t.Fatalf("no model_id in %s", res.Text)
	}
	pres, err := client.CallTool(ctx, "predict", map[string]any{
		"model_id": id,
		"features": []any{[]any{10.0, 20.0}},
	})
	if err != nil || pres.IsErr {
		t.Fatalf("predict failed: %v %s", err, pres.Text)
	}
	var pout map[string][]float64
	if err := json.Unmarshal(pres.Data, &pout); err != nil {
		t.Fatal(err)
	}
	if math.Abs(pout["predictions"][0]-31) > 1e-6 {
		t.Fatalf("prediction = %v, want 31", pout["predictions"][0])
	}
}

func TestServerZScoreIntoTrain(t *testing.T) {
	client := serverClient(t)
	ctx := context.Background()
	features := []any{}
	target := []any{}
	for i := 0; i < 50; i++ {
		f := float64(i)
		features = append(features, []any{f * 100, f})
		target = append(target, 5*f)
	}
	zres, err := client.CallTool(ctx, "zscore_normalize", map[string]any{"features": features})
	if err != nil || zres.IsErr {
		t.Fatalf("zscore failed: %v %s", err, zres.Text)
	}
	var zout map[string]any
	if err := json.Unmarshal(zres.Data, &zout); err != nil {
		t.Fatal(err)
	}
	// Pass the whole zscore result as features: the train tool accepts it
	// and stores means/stds for later prediction.
	tres, err := client.CallTool(ctx, "train_linear_regression", map[string]any{
		"features": zout, "target": target,
	})
	if err != nil || tres.IsErr {
		t.Fatalf("train on normalized failed: %v %s", err, tres.Text)
	}
	var tout map[string]any
	_ = json.Unmarshal(tres.Data, &tout)
	id, _ := tout["model_id"].(string)
	// Predict applies the stored normalization to raw inputs.
	pres, err := client.CallTool(ctx, "predict", map[string]any{
		"model_id": id, "features": []any{[]any{2500.0, 25.0}},
	})
	if err != nil || pres.IsErr {
		t.Fatalf("predict failed: %v %s", err, pres.Text)
	}
	var pout map[string][]float64
	_ = json.Unmarshal(pres.Data, &pout)
	if math.Abs(pout["predictions"][0]-125) > 1.0 {
		t.Fatalf("normalized round trip prediction = %v, want ~125", pout["predictions"][0])
	}
}

func TestServerErrors(t *testing.T) {
	client := serverClient(t)
	ctx := context.Background()
	res, _ := client.CallTool(ctx, "predict", map[string]any{
		"model_id": "model-999", "features": []any{[]any{1.0}},
	})
	if !res.IsErr || !strings.Contains(res.Text, "unknown model_id") {
		t.Fatalf("unknown model must error: %s", res.Text)
	}
	res, _ = client.CallTool(ctx, "train_linear_regression", map[string]any{
		"features": []any{[]any{1.0}}, "target": []any{1.0, 2.0},
	})
	if !res.IsErr {
		t.Fatalf("mismatched rows must error: %s", res.Text)
	}
	res, _ = client.CallTool(ctx, "trend_analyze", map[string]any{})
	if !res.IsErr {
		t.Fatalf("empty trend args must error: %s", res.Text)
	}
}

func TestServerTrend(t *testing.T) {
	client := serverClient(t)
	res, err := client.CallTool(context.Background(), "trend_analyze", map[string]any{
		"sales":   []any{1.0, 2.0, 3.0, 4.0},
		"refunds": []any{4.0, 3.0, 2.0, 1.0},
	})
	if err != nil || res.IsErr {
		t.Fatalf("trend failed: %v %s", err, res.Text)
	}
	if !strings.Contains(res.Text, `"rising"`) || !strings.Contains(res.Text, `"falling"`) {
		t.Fatalf("trend directions missing: %s", res.Text)
	}
}
