package mltools

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"bridgescope/internal/mcp"
)

// Server registers the analytics tools into an MCP registry and owns the
// trained-model store. Train tools return a compact handle (model_id) plus
// metrics rather than serializing whole models into the LLM context; the
// predict tool resolves handles from the store. This mirrors how real ML
// tool servers behave and keeps token accounting honest.
type Server struct {
	mu     sync.Mutex
	nextID int
	models map[string]storedModel
	seed   int64
}

type storedModel struct {
	kind   string // "linear" or "forest"
	linear *LinearModel
	forest *Forest
	means  []float64
	stds   []float64
}

// NewServer creates a tool server; seed drives every stochastic component
// (bootstrap sampling, train/test splits).
func NewServer(seed int64) *Server {
	return &Server{models: map[string]storedModel{}, seed: seed}
}

// RegisterTools adds the analytics tools to reg.
func (s *Server) RegisterTools(reg *mcp.Registry) {
	reg.Register(&mcp.Tool{
		Name:        "zscore_normalize",
		Description: "Standardize a feature matrix to zero mean and unit variance per column. Returns the normalized features plus the column means and stds.",
		InputSchema: objSchema(map[string]any{
			"features": map[string]any{"type": "array", "description": "matrix of numbers"},
		}, "features"),
		Handler: s.handleZScore,
	})
	reg.Register(&mcp.Tool{
		Name:        "train_linear_regression",
		Description: "Train a linear regression on features/target with an 80/20 train-test split. Returns a model_id handle plus train/test RMSE and R².",
		InputSchema: objSchema(map[string]any{
			"features": map[string]any{"type": "array"},
			"target":   map[string]any{"type": "array"},
		}, "features", "target"),
		Handler: s.handleTrainLinear,
	})
	reg.Register(&mcp.Tool{
		Name:        "train_random_forest",
		Description: "Train a random-forest regressor on features/target with an 80/20 train-test split. Returns a model_id handle plus train/test RMSE and R².",
		InputSchema: objSchema(map[string]any{
			"features": map[string]any{"type": "array"},
			"target":   map[string]any{"type": "array"},
			"trees":    map[string]any{"type": "integer"},
		}, "features", "target"),
		Handler: s.handleTrainForest,
	})
	reg.Register(&mcp.Tool{
		Name:        "predict",
		Description: "Predict with a previously trained model (by model_id) on a feature matrix. Applies the model's stored normalization when present.",
		InputSchema: objSchema(map[string]any{
			"model_id": map[string]any{"type": "string"},
			"features": map[string]any{"type": "array"},
		}, "model_id", "features"),
		Handler: s.handlePredict,
	})
	reg.Register(&mcp.Tool{
		Name:        "evaluate_regression",
		Description: "Compute RMSE and R² between predictions and ground truth.",
		InputSchema: objSchema(map[string]any{
			"predictions": map[string]any{"type": "array"},
			"truth":       map[string]any{"type": "array"},
		}, "predictions", "truth"),
		Handler: s.handleEvaluate,
	})
	reg.Register(&mcp.Tool{
		Name:        "trend_analyze",
		Description: "Analyze trends in one or two numeric series (e.g. sales and refunds records) and report direction, slope and mean.",
		InputSchema: objSchema(map[string]any{
			"sales":   map[string]any{"type": "array"},
			"refunds": map[string]any{"type": "array"},
			"series":  map[string]any{"type": "array"},
		}),
		Handler: s.handleTrend,
	})
}

func objSchema(props map[string]any, required ...string) map[string]any {
	reqAny := make([]any, len(required))
	for i, r := range required {
		reqAny[i] = r
	}
	return map[string]any{"type": "object", "properties": props, "required": reqAny}
}

func (s *Server) store(m storedModel) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("model-%d", s.nextID)
	s.models[id] = m
	return id
}

func (s *Server) load(id string) (storedModel, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[id]
	return m, ok
}

func (s *Server) handleZScore(ctx context.Context, args map[string]any) (any, error) {
	x, err := argMatrix(args, "features")
	if err != nil {
		return nil, err
	}
	norm, means, stds, err := ZScoreNormalize(x)
	if err != nil {
		return nil, err
	}
	return result(map[string]any{"features": norm, "means": means, "stds": stds})
}

// trainArgs extracts features/target and, when the caller's features came
// through zscore_normalize, the attached means/stds.
func trainArgs(args map[string]any) (x [][]float64, y []float64, means, stds []float64, err error) {
	// The features argument may be a raw matrix or the full
	// zscore_normalize result object.
	if m, ok := args["features"].(map[string]any); ok {
		x, err = anyMatrix(m["features"])
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("features: %w", err)
		}
		means, _ = anyVector(m["means"])
		stds, _ = anyVector(m["stds"])
	} else {
		x, err = argMatrix(args, "features")
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	y, err = argVector(args, "target")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if len(x) != len(y) {
		return nil, nil, nil, nil, fmt.Errorf("features has %d rows but target has %d", len(x), len(y))
	}
	return x, y, means, stds, nil
}

func (s *Server) handleTrainLinear(ctx context.Context, args map[string]any) (any, error) {
	x, y, means, stds, err := trainArgs(args)
	if err != nil {
		return nil, err
	}
	xTr, xTe, yTr, yTe, err := TrainTestSplit(x, y, 0.2, s.seed)
	if err != nil {
		return nil, err
	}
	model, err := TrainLinearRegression(xTr, yTr)
	if err != nil {
		return nil, err
	}
	id := s.store(storedModel{kind: "linear", linear: model, means: means, stds: stds})
	return trainResult(id, "linear_regression", model.Predict, xTr, yTr, xTe, yTe)
}

func (s *Server) handleTrainForest(ctx context.Context, args map[string]any) (any, error) {
	x, y, means, stds, err := trainArgs(args)
	if err != nil {
		return nil, err
	}
	cfg := ForestConfig{Seed: s.seed}
	if tv, ok := args["trees"].(float64); ok && tv > 0 {
		cfg.Trees = int(tv)
	}
	xTr, xTe, yTr, yTe, err := TrainTestSplit(x, y, 0.2, s.seed)
	if err != nil {
		return nil, err
	}
	model, err := TrainRandomForest(xTr, yTr, cfg)
	if err != nil {
		return nil, err
	}
	id := s.store(storedModel{kind: "forest", forest: model, means: means, stds: stds})
	return trainResult(id, "random_forest", model.Predict, xTr, yTr, xTe, yTe)
}

func trainResult(id, kind string, predict func([][]float64) ([]float64, error),
	xTr [][]float64, yTr []float64, xTe [][]float64, yTe []float64) (any, error) {
	predTr, err := predict(xTr)
	if err != nil {
		return nil, err
	}
	rmseTr, _ := RMSE(predTr, yTr)
	r2Tr, _ := R2(predTr, yTr)
	predTe, err := predict(xTe)
	if err != nil {
		return nil, err
	}
	rmseTe, _ := RMSE(predTe, yTe)
	r2Te, _ := R2(predTe, yTe)
	return result(map[string]any{
		"model_id": id, "model_type": kind,
		"n_train": len(xTr), "n_test": len(xTe),
		"rmse_train": rmseTr, "rmse_test": rmseTe,
		"r2_train": r2Tr, "r2_test": r2Te,
	})
}

func (s *Server) handlePredict(ctx context.Context, args map[string]any) (any, error) {
	id, _ := args["model_id"].(string)
	m, ok := s.load(id)
	if !ok {
		return nil, fmt.Errorf("unknown model_id %q", id)
	}
	x, err := argMatrix(args, "features")
	if err != nil {
		return nil, err
	}
	if m.means != nil {
		x, err = ApplyZScore(x, m.means, m.stds)
		if err != nil {
			return nil, err
		}
	}
	var preds []float64
	switch m.kind {
	case "linear":
		preds, err = m.linear.Predict(x)
	case "forest":
		preds, err = m.forest.Predict(x)
	default:
		err = fmt.Errorf("corrupt model record %q", id)
	}
	if err != nil {
		return nil, err
	}
	return result(map[string]any{"predictions": preds})
}

func (s *Server) handleEvaluate(ctx context.Context, args map[string]any) (any, error) {
	pred, err := argVector(args, "predictions")
	if err != nil {
		return nil, err
	}
	truth, err := argVector(args, "truth")
	if err != nil {
		return nil, err
	}
	rmse, err := RMSE(pred, truth)
	if err != nil {
		return nil, err
	}
	r2, err := R2(pred, truth)
	if err != nil {
		return nil, err
	}
	return result(map[string]any{"rmse": rmse, "r2": r2})
}

func (s *Server) handleTrend(ctx context.Context, args map[string]any) (any, error) {
	out := map[string]any{}
	for _, key := range []string{"sales", "refunds", "series"} {
		raw, ok := args[key]
		if !ok {
			continue
		}
		series, err := anyVector(raw)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", key, err)
		}
		tr, err := AnalyzeTrend(series)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", key, err)
		}
		out[key+"_trend"] = tr
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trend_analyze: provide sales, refunds, or series")
	}
	return result(out)
}

// result returns a tool payload. The JSON is both the visible text (what an
// LLM reads and may have to copy onward — the cost Table 2 measures) and the
// structured data the proxy forwards directly.
func result(data map[string]any) (any, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return nil, err
	}
	return mcp.CallResult{Text: string(raw), Data: raw}, nil
}

// --- argument coercion (values arrive as decoded JSON) ---

func argMatrix(args map[string]any, key string) ([][]float64, error) {
	v, ok := args[key]
	if !ok {
		return nil, fmt.Errorf("missing required argument %q", key)
	}
	m, err := anyMatrix(v)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", key, err)
	}
	return m, nil
}

func anyMatrix(v any) ([][]float64, error) {
	switch rows := v.(type) {
	case [][]float64:
		return rows, nil
	case []any:
		out := make([][]float64, 0, len(rows))
		for i, r := range rows {
			vec, err := anyVector(r)
			if err != nil {
				return nil, fmt.Errorf("row %d: %w", i, err)
			}
			out = append(out, vec)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("empty matrix")
		}
		return out, nil
	}
	return nil, fmt.Errorf("expected a matrix, got %T", v)
}

func argVector(args map[string]any, key string) ([]float64, error) {
	v, ok := args[key]
	if !ok {
		return nil, fmt.Errorf("missing required argument %q", key)
	}
	vec, err := anyVector(v)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", key, err)
	}
	return vec, nil
}

func anyVector(v any) ([]float64, error) {
	switch vec := v.(type) {
	case []float64:
		return vec, nil
	case []any:
		out := make([]float64, len(vec))
		for i, e := range vec {
			switch n := e.(type) {
			case float64:
				out[i] = n
			case int64:
				out[i] = float64(n)
			case int:
				out[i] = float64(n)
			default:
				return nil, fmt.Errorf("element %d is %T, not numeric", i, e)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("expected a vector, got %T", v)
}
