// Package mltools is the analytics substrate: the data-consumer tools the
// NL2ML benchmark attaches to the agent (paper §3.4). It implements linear
// regression via normal equations, random-forest regression (CART trees
// with bootstrap sampling and random feature subsets), z-score
// normalization, train/test splitting, regression metrics, and the
// moving-average trend detector used by the chain-store scenario.
//
// Everything is deterministic given a seed, stdlib only.
package mltools

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// --- preprocessing ---

// ZScoreNormalize standardizes each feature column to zero mean and unit
// variance, returning the normalized matrix plus the per-column means and
// standard deviations (needed to transform prediction inputs consistently).
func ZScoreNormalize(x [][]float64) (norm [][]float64, means, stds []float64, err error) {
	if len(x) == 0 {
		return nil, nil, nil, fmt.Errorf("empty matrix")
	}
	cols := len(x[0])
	means = make([]float64, cols)
	stds = make([]float64, cols)
	for _, row := range x {
		if len(row) != cols {
			return nil, nil, nil, fmt.Errorf("ragged matrix: row has %d columns, want %d", len(row), cols)
		}
		for j, v := range row {
			means[j] += v
		}
	}
	n := float64(len(x))
	for j := range means {
		means[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - means[j]
			stds[j] += d * d
		}
	}
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] / n)
		if stds[j] == 0 {
			stds[j] = 1 // constant column: leave centered values at 0
		}
	}
	norm = make([][]float64, len(x))
	for i, row := range x {
		nr := make([]float64, cols)
		for j, v := range row {
			nr[j] = (v - means[j]) / stds[j]
		}
		norm[i] = nr
	}
	return norm, means, stds, nil
}

// ApplyZScore transforms rows with previously computed means/stds.
func ApplyZScore(x [][]float64, means, stds []float64) ([][]float64, error) {
	out := make([][]float64, len(x))
	for i, row := range x {
		if len(row) != len(means) {
			return nil, fmt.Errorf("row %d has %d columns, want %d", i, len(row), len(means))
		}
		nr := make([]float64, len(row))
		for j, v := range row {
			nr[j] = (v - means[j]) / stds[j]
		}
		out[i] = nr
	}
	return out, nil
}

// TrainTestSplit partitions (x, y) with the given test fraction, shuffled
// deterministically by seed.
func TrainTestSplit(x [][]float64, y []float64, testFrac float64, seed int64) (xTrain, xTest [][]float64, yTrain, yTest []float64, err error) {
	if len(x) != len(y) {
		return nil, nil, nil, nil, fmt.Errorf("x has %d rows, y has %d", len(x), len(y))
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("test fraction must be in (0,1), got %g", testFrac)
	}
	idx := rand.New(rand.NewSource(seed)).Perm(len(x))
	nTest := int(float64(len(x)) * testFrac)
	for i, p := range idx {
		if i < nTest {
			xTest = append(xTest, x[p])
			yTest = append(yTest, y[p])
		} else {
			xTrain = append(xTrain, x[p])
			yTrain = append(yTrain, y[p])
		}
	}
	return xTrain, xTest, yTrain, yTest, nil
}

// --- linear regression ---

// LinearModel is a fitted ordinary-least-squares model.
type LinearModel struct {
	Intercept float64   `json:"intercept"`
	Coef      []float64 `json:"coef"`
}

// TrainLinearRegression fits OLS via the normal equations with Gaussian
// elimination and partial pivoting. A tiny ridge term keeps near-singular
// systems solvable.
func TrainLinearRegression(x [][]float64, y []float64) (*LinearModel, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("need matching non-empty x (%d rows) and y (%d)", len(x), len(y))
	}
	p := len(x[0]) + 1 // +1 for intercept
	// Build X'X (p×p) and X'y (p).
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r, row := range x {
		if len(row) != p-1 {
			return nil, fmt.Errorf("ragged matrix at row %d", r)
		}
		aug := make([]float64, p)
		aug[0] = 1
		copy(aug[1:], row)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				xtx[i][j] += aug[i] * aug[j]
			}
			xty[i] += aug[i] * y[r]
		}
	}
	for i := 1; i < p; i++ {
		xtx[i][i] += 1e-8 // ridge against singularity
	}
	beta, err := solveLinear(xtx, xty)
	if err != nil {
		return nil, err
	}
	return &LinearModel{Intercept: beta[0], Coef: beta[1:]}, nil
}

// Predict evaluates the model on feature rows.
func (m *LinearModel) Predict(x [][]float64) ([]float64, error) {
	out := make([]float64, len(x))
	for i, row := range x {
		if len(row) != len(m.Coef) {
			return nil, fmt.Errorf("row %d has %d features, model expects %d", i, len(row), len(m.Coef))
		}
		v := m.Intercept
		for j, c := range m.Coef {
			v += c * row[j]
		}
		out[i] = v
	}
	return out, nil
}

// solveLinear solves Ax = b with Gaussian elimination and partial pivoting.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("singular system")
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := m[i][n]
		for j := i + 1; j < n; j++ {
			v -= m[i][j] * x[j]
		}
		x[i] = v / m[i][i]
	}
	return x, nil
}

// --- random forest regression ---

// ForestConfig controls random-forest training.
type ForestConfig struct {
	Trees       int // number of trees (default 20)
	MaxDepth    int // tree depth limit (default 8)
	MinLeaf     int // minimum samples per leaf (default 5)
	FeatureFrac float64
	Seed        int64
}

func (c *ForestConfig) defaults() {
	if c.Trees <= 0 {
		c.Trees = 20
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
	if c.FeatureFrac <= 0 || c.FeatureFrac > 1 {
		c.FeatureFrac = 0.6
	}
}

// Forest is a trained random-forest regressor.
type Forest struct {
	Trees []*treeNode `json:"trees"`
}

type treeNode struct {
	Feature int       `json:"f"`
	Thresh  float64   `json:"t"`
	Value   float64   `json:"v"`
	Left    *treeNode `json:"l,omitempty"`
	Right   *treeNode `json:"r,omitempty"`
	Leaf    bool      `json:"leaf"`
}

// TrainRandomForest fits a forest of CART regression trees on bootstrap
// samples with random feature subsets per split.
func TrainRandomForest(x [][]float64, y []float64, cfg ForestConfig) (*Forest, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("need matching non-empty x (%d rows) and y (%d)", len(x), len(y))
	}
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{}
	n := len(x)
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		tree := buildTree(x, y, idx, cfg, rng, 0)
		f.Trees = append(f.Trees, tree)
	}
	return f, nil
}

func buildTree(x [][]float64, y []float64, idx []int, cfg ForestConfig, rng *rand.Rand, depth int) *treeNode {
	mean := 0.0
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return &treeNode{Leaf: true, Value: mean}
	}
	nFeat := len(x[0])
	k := int(float64(nFeat) * cfg.FeatureFrac)
	if k < 1 {
		k = 1
	}
	feats := rng.Perm(nFeat)[:k]

	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)
	vals := make([]float64, len(idx))
	for _, fi := range feats {
		for j, i := range idx {
			vals[j] = x[i][fi]
		}
		sorted := append([]float64{}, vals...)
		sort.Float64s(sorted)
		// Candidate thresholds at a handful of quantiles: fast and good
		// enough for regression splits.
		for q := 1; q <= 8; q++ {
			thresh := sorted[len(sorted)*q/9]
			score := splitSSE(x, y, idx, fi, thresh, cfg.MinLeaf)
			if score < bestScore {
				bestScore, bestFeat, bestThresh = score, fi, thresh
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{Leaf: true, Value: mean}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return &treeNode{Leaf: true, Value: mean}
	}
	return &treeNode{
		Feature: bestFeat,
		Thresh:  bestThresh,
		Left:    buildTree(x, y, left, cfg, rng, depth+1),
		Right:   buildTree(x, y, right, cfg, rng, depth+1),
	}
}

// splitSSE computes the total within-partition sum of squared errors for a
// candidate split, or +Inf when a side is under the leaf minimum.
func splitSSE(x [][]float64, y []float64, idx []int, feat int, thresh float64, minLeaf int) float64 {
	var nL, nR float64
	var sumL, sumR, sqL, sqR float64
	for _, i := range idx {
		v := y[i]
		if x[i][feat] <= thresh {
			nL++
			sumL += v
			sqL += v * v
		} else {
			nR++
			sumR += v
			sqR += v * v
		}
	}
	if int(nL) < minLeaf || int(nR) < minLeaf {
		return math.Inf(1)
	}
	sseL := sqL - sumL*sumL/nL
	sseR := sqR - sumR*sumR/nR
	return sseL + sseR
}

// Predict averages the per-tree predictions.
func (f *Forest) Predict(x [][]float64) ([]float64, error) {
	if len(f.Trees) == 0 {
		return nil, fmt.Errorf("empty forest")
	}
	out := make([]float64, len(x))
	for i, row := range x {
		sum := 0.0
		for _, t := range f.Trees {
			sum += t.eval(row)
		}
		out[i] = sum / float64(len(f.Trees))
	}
	return out, nil
}

func (n *treeNode) eval(row []float64) float64 {
	for !n.Leaf {
		if n.Feature < len(row) && row[n.Feature] <= n.Thresh {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Value
}

// --- metrics ---

// RMSE is the root-mean-square error between predictions and truth.
func RMSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("need matching non-empty slices (%d vs %d)", len(pred), len(truth))
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred))), nil
}

// R2 is the coefficient of determination.
func R2(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("need matching non-empty slices (%d vs %d)", len(pred), len(truth))
	}
	mean := 0.0
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i := range truth {
		ssRes += (truth[i] - pred[i]) * (truth[i] - pred[i])
		ssTot += (truth[i] - mean) * (truth[i] - mean)
	}
	if ssTot == 0 {
		return 0, fmt.Errorf("constant target")
	}
	return 1 - ssRes/ssTot, nil
}

// --- trend analysis (chain-store scenario, paper Figure 3) ---

// Trend summarizes a series' direction.
type Trend struct {
	Direction string  `json:"direction"` // "rising", "falling", "flat"
	Slope     float64 `json:"slope"`
	Mean      float64 `json:"mean"`
	Last      float64 `json:"last"`
}

// AnalyzeTrend fits a least-squares line over the series and classifies the
// direction; slopes within ±2% of the mean per step count as flat.
func AnalyzeTrend(series []float64) (*Trend, error) {
	if len(series) < 2 {
		return nil, fmt.Errorf("need at least 2 points, got %d", len(series))
	}
	n := float64(len(series))
	var sx, sy, sxy, sxx float64
	for i, v := range series {
		xi := float64(i)
		sx += xi
		sy += v
		sxy += xi * v
		sxx += xi * xi
	}
	den := n*sxx - sx*sx
	slope := (n*sxy - sx*sy) / den
	mean := sy / n
	dir := "flat"
	threshold := math.Abs(mean) * 0.02
	switch {
	case slope > threshold:
		dir = "rising"
	case slope < -threshold:
		dir = "falling"
	}
	return &Trend{Direction: dir, Slope: slope, Mean: mean, Last: series[len(series)-1]}, nil
}
