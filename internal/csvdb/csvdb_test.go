package csvdb

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bridgescope/internal/core"
	"bridgescope/internal/sqldb"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"orders.csv":     "id,item,qty,price\n1,shirt,2,19.99\n2,jeans,1,49.5\n3,mug,4,7.25\n",
		"Events Log.csv": "ts,kind,note\n100,start,boot ok\n200,stop,\n",
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestOpenAndQuery(t *testing.T) {
	store, err := Open(writeFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	root := store.Engine().NewSession("root")
	r := root.MustExec("SELECT COUNT(*), SUM(qty) FROM orders")
	if r.Rows[0][0].I != 3 || r.Rows[0][1].I != 7 {
		t.Fatalf("orders not loaded: %v", r.Rows)
	}
	// File names with spaces/case become valid identifiers.
	r = root.MustExec("SELECT COUNT(*) FROM events_log")
	if r.Rows[0][0].I != 2 {
		t.Fatalf("events_log not loaded: %v", r.Rows)
	}
}

func TestTypeInference(t *testing.T) {
	store, err := Open(writeFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := store.Engine().Table("orders")
	if !ok {
		t.Fatal("orders table missing")
	}
	wantTypes := map[string]string{"id": "INTEGER", "item": "TEXT", "qty": "INTEGER", "price": "REAL"}
	for _, c := range tab.Columns {
		if got := c.Type.String(); got != wantTypes[c.Name] {
			t.Fatalf("column %s inferred as %s, want %s", c.Name, got, wantTypes[c.Name])
		}
	}
	// Empty cells load as NULL.
	root := store.Engine().NewSession("root")
	r := root.MustExec("SELECT COUNT(*) FROM events_log WHERE note IS NULL")
	if r.Rows[0][0].I != 1 {
		t.Fatalf("empty cell should be NULL: %v", r.Rows)
	}
}

func TestBridgeScopeOverCSV(t *testing.T) {
	store, err := Open(writeFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	store.Grants().GrantAll("analyst", "orders")
	tk := core.New(store.Conn("analyst"), core.Policy{})
	ctx := context.Background()

	schema, err := tk.Client().CallTool(ctx, "get_schema", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(schema.Text, "CREATE TABLE orders") ||
		!strings.Contains(schema.Text, "-- Access: True") {
		t.Fatalf("annotated CSV schema wrong:\n%s", schema.Text)
	}
	// events_log is visible but inaccessible — same annotation semantics
	// as any other backend.
	if !strings.Contains(schema.Text, "-- Access: False") {
		t.Fatalf("inaccessible CSV table should be annotated:\n%s", schema.Text)
	}

	rows, err := tk.Client().CallTool(ctx, "select", map[string]any{
		"sql": "SELECT item FROM orders WHERE price > 10 ORDER BY price DESC",
	})
	if err != nil || rows.IsErr {
		t.Fatalf("select over CSV failed: %v %s", err, rows.Text)
	}
	if !strings.Contains(rows.Text, "jeans") {
		t.Fatalf("unexpected rows: %s", rows.Text)
	}

	// Transactions work over CSV-backed tables too.
	for _, step := range []struct {
		tool string
		args map[string]any
	}{
		{"begin", nil},
		{"update", map[string]any{"sql": "UPDATE orders SET qty = qty + 1 WHERE id = 1"}},
		{"commit", nil},
	} {
		res, err := tk.Client().CallTool(ctx, step.tool, step.args)
		if err != nil || res.IsErr {
			t.Fatalf("%s failed: %v %s", step.tool, err, res.Text)
		}
	}
}

func TestSaveRoundTrip(t *testing.T) {
	dir := writeFixture(t)
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	root := store.Engine().NewSession("root")
	root.MustExec("INSERT INTO orders VALUES (4, 'hat', 1, 12.5)")
	root.MustExec("DELETE FROM orders WHERE id = 2")

	out := t.TempDir()
	if err := store.Save(out); err != nil {
		t.Fatal(err)
	}
	re, err := Open(out)
	if err != nil {
		t.Fatal(err)
	}
	r := re.Engine().NewSession("root").MustExec("SELECT COUNT(*), SUM(qty) FROM orders")
	if r.Rows[0][0].I != 3 || r.Rows[0][1].I != 7 {
		t.Fatalf("round trip lost modifications: %v", r.Rows)
	}
	r = re.Engine().NewSession("root").MustExec("SELECT item FROM orders WHERE id = 4")
	if len(r.Rows) != 1 || r.Rows[0][0].S != "hat" {
		t.Fatalf("inserted row lost: %v", r.Rows)
	}
}

func TestTableName(t *testing.T) {
	cases := map[string]string{
		"orders.csv":     "orders",
		"Events Log.csv": "events_log",
		"2024data.csv":   "t_2024data",
		"UPPER.CSV":      "upper",
	}
	for in, want := range cases {
		if got := TableName(in); got != want {
			t.Errorf("TableName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing directory must error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.csv"), []byte(""), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("empty csv must error")
	}
}

func TestExplainOverCSV(t *testing.T) {
	store, err := Open(writeFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	store.Grants().Grant("analyst", mustAction(t, "SELECT"), "orders")

	// Plan metadata flows through the same Conn interface as the native
	// backend: a fresh CSV table full-scans...
	plan, err := store.Explain("analyst", "SELECT item FROM orders WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Seq Scan on orders") {
		t.Fatalf("expected seq scan over csv table:\n%s", plan)
	}

	// ...and indexing it upgrades the same query to an index scan.
	store.Engine().NewSession("root").MustExec("CREATE INDEX idx_id ON orders (id)")
	plan, err = store.Explain("analyst", "SELECT item FROM orders WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Index Scan on orders using index idx_id (id = 2)") {
		t.Fatalf("expected index scan over csv table:\n%s", plan)
	}

	// EXPLAIN enforces privileges: analyst has no grant on events_log.
	if _, err := store.Explain("analyst", "SELECT * FROM events_log"); err == nil {
		t.Fatal("EXPLAIN must enforce SELECT privilege on csv tables")
	}

	// The EXPLAIN statement form works through Conn.Exec too.
	res, err := store.Conn("analyst").Exec("EXPLAIN SELECT item FROM orders WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "QUERY PLAN" {
		t.Fatalf("EXPLAIN over Conn returned %v", res.Columns)
	}
}

func mustAction(t *testing.T, name string) sqldb.Action {
	t.Helper()
	a, ok := sqldb.ParseAction(name)
	if !ok {
		t.Fatalf("bad action %q", name)
	}
	return a
}

// TestOpenDurable: SQL mutations against a CSV-backed store survive a close
// and reopen, and recovered tables are not re-seeded from the CSV files.
func TestOpenDurable(t *testing.T) {
	dir := writeFixture(t)
	state := t.TempDir()

	store, err := OpenDurable(dir, state, sqldb.Options{Sync: sqldb.SyncBatch, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	conn := store.Conn("root")
	if _, err := conn.Exec("UPDATE orders SET qty = 99 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("INSERT INTO orders VALUES (4, 'hat', 1, 12.0)"); err != nil {
		t.Fatal(err)
	}
	if st := store.Durability(); !st.Durable || st.Commits == 0 {
		t.Fatalf("durable store reports %+v", st)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenDurable(dir, state, sqldb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	res, err := store2.Conn("root").Exec("SELECT qty FROM orders WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(99) {
		t.Fatalf("durable UPDATE lost: %+v", res.Rows)
	}
	cnt, err := store2.Conn("root").Exec("SELECT COUNT(*) FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Rows[0][0] != int64(4) {
		t.Fatalf("recovered table was re-seeded from CSV: %+v", cnt.Rows)
	}

	// In-memory stores expose the same surface, reporting not-durable.
	mem, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if st := mem.Durability(); st.Durable || st.Mode != "memory" {
		t.Fatalf("in-memory store reports %+v", st)
	}
}

// TestDurableSeedIsAtomic: each CSV seeds as one transaction (CREATE TABLE +
// INSERT in a single commit). If CREATE committed on its own, a later seed
// failure would leave a durable empty table that shadows the CSV on every
// subsequent open — loadDir skips files whose table already exists — so the
// data could never be re-seeded even after the file was fixed.
func TestDurableSeedIsAtomic(t *testing.T) {
	dir := writeFixture(t)
	state := t.TempDir()
	store, err := OpenDurable(dir, state, sqldb.Options{Sync: sqldb.SyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Two fixture CSVs, one commit each; a split CREATE + INSERT would
	// double the count.
	if st := store.Durability(); st.Commits != 2 {
		t.Fatalf("seeding two CSVs took %d commits, want 2 (one transaction per file)", st.Commits)
	}
}
