package csvdb

import (
	"fmt"
	"testing"

	"bridgescope/internal/sqldb/vfs"
)

// seedCSV writes one fully-synced CSV file into a FaultFS.
func seedCSV(t *testing.T, fsys vfs.FS, path, body string) {
	t.Helper()
	f, err := fsys.OpenFile(path, vfs.O_CREATE|vfs.O_WRONLY|vfs.O_TRUNC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(body)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveTornExportRecoverable is the regression test for the vfsio finding
// this PR fixes: Save used to write CSVs with a bare os.Create, so a crash
// mid-export could leave a half-written file that the next Open would load
// as real data. Now that the export goes through the vfs seam (temp file →
// fsync → rename → dir fsync), this test crashes the export at every
// recorded I/O step under every tear policy and proves each table is always
// either fully old or fully new — never torn, never unloadable.
func TestSaveTornExportRecoverable(t *testing.T) {
	m := vfs.NewFaultFS()
	m.RecordHistory(true)
	seedCSV(t, m, "data/orders.csv", "id,qty\n1,2\n2,1\n")
	seedCSV(t, m, "data/users.csv", "id,name\n1,ada\n")
	if err := m.SyncDir("data"); err != nil {
		t.Fatal(err)
	}

	store, err := OpenFS("data", m)
	if err != nil {
		t.Fatal(err)
	}
	root := store.Engine().NewSession("root")
	root.MustExec("INSERT INTO orders VALUES (3, 4)")
	root.MustExec("UPDATE users SET name = 'grace' WHERE id = 1")

	pre := m.Steps()
	if err := store.Save("data"); err != nil {
		t.Fatal(err)
	}
	post := m.Steps()
	if post <= pre {
		t.Fatalf("Save recorded no I/O steps (pre=%d post=%d)", pre, post)
	}

	// Each table's export is old or new as a unit; a torn file would show a
	// mismatched pair (e.g. 3 rows that still sum to 3) or fail to load.
	type ordersState struct{ count, sum int64 }
	oldOrders := ordersState{2, 3}
	newOrders := ordersState{3, 7}
	sawOld, sawNew := false, false

	for step := pre; step <= post; step++ {
		for _, policy := range []vfs.TearPolicy{vfs.TearKill, vfs.TearLoseUnsynced, vfs.TearPartial} {
			img, err := m.ImageAt(step, policy, 7)
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("step %d, %v", step, policy)
			re, err := OpenFS("data", img)
			if err != nil {
				t.Fatalf("%s: reopen after crash failed: %v", name, err)
			}
			s := re.Engine().NewSession("root")
			r := s.MustExec("SELECT COUNT(*), SUM(qty) FROM orders")
			got := ordersState{r.Rows[0][0].I, r.Rows[0][1].I}
			switch got {
			case oldOrders:
				sawOld = true
			case newOrders:
				sawNew = true
			default:
				t.Fatalf("%s: orders torn: got %+v, want %+v or %+v", name, got, oldOrders, newOrders)
			}
			r = s.MustExec("SELECT name FROM users WHERE id = 1")
			if u := r.Rows[0][0].S; u != "ada" && u != "grace" {
				t.Fatalf("%s: users torn: name = %q", name, u)
			}
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("crash sweep never exercised both sides (old=%v new=%v)", sawOld, sawNew)
	}
}
