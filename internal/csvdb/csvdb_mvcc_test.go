package csvdb

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSnapshotIsolationOverCSVStore: sessions over a CSV-backed store get
// the engine's snapshot isolation — no dirty reads across connections, and
// write-write conflicts surface as retryable serialization failures through
// the backend-agnostic Conn classifier.
func TestSnapshotIsolationOverCSVStore(t *testing.T) {
	dir := t.TempDir()
	csv := "id,qty\n1,10\n2,20\n"
	if err := os.WriteFile(filepath.Join(dir, "stock.csv"), []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	writer := store.Conn("root")
	reader := store.Conn("root")
	if err := writer.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec("UPDATE stock SET qty = 99 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	// The other connection must not see the uncommitted update.
	res, err := reader.Exec("SELECT qty FROM stock WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 10 {
		t.Fatalf("dirty read through CSV store: qty = %d, want 10", got)
	}
	// A concurrent write to the same row is a retryable conflict.
	other := store.Conn("root")
	if err := other.Begin(); err != nil {
		t.Fatal(err)
	}
	_, err = other.Exec("UPDATE stock SET qty = 50 WHERE id = 1")
	if !other.IsSerializationFailure(err) {
		t.Fatalf("concurrent write = %v, want serialization failure", err)
	}
	_ = other.Rollback()
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err = reader.Exec("SELECT qty FROM stock WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 99 {
		t.Fatalf("committed update invisible: qty = %d, want 99", got)
	}
}
