// Package csvdb adapts directories of CSV files into BridgeScope
// connections, demonstrating the paper's §2.6 claim that the toolkit is
// database-agnostic: any data source that can satisfy core.Conn gets the
// full BridgeScope tool suite (annotated schema retrieval, per-action SQL
// tools, transactions, proxy) with no toolkit changes.
//
// A Store loads every *.csv file in a directory as a table (header row =
// column names, types inferred per column), executes SQL against it through
// the embedded engine, and can persist modified tables back to disk.
package csvdb

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"bridgescope/internal/core"
	"bridgescope/internal/sqldb"
	"bridgescope/internal/sqldb/stats"
	"bridgescope/internal/sqldb/vfs"
)

// Store is a CSV-backed datasource. All file I/O — loading CSVs and
// exporting them back — goes through the vfs seam, so fault injection and
// crash imaging cover the CSV export exactly like the engine's WAL.
type Store struct {
	dir    string
	fs     vfs.FS
	engine *sqldb.Engine
}

// Open loads every .csv file in dir as a table named after the file.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, vfs.OS())
}

// OpenFS is Open on an explicit filesystem. Tests pass a vfs.FaultFS to
// drive the load/save cycle through simulated crashes.
func OpenFS(dir string, fsys vfs.FS) (*Store, error) {
	engine := sqldb.NewEngine("csv:" + filepath.Base(dir))
	if err := loadDir(engine, fsys, dir); err != nil {
		return nil, err
	}
	return &Store{dir: dir, fs: fsys, engine: engine}, nil
}

// OpenDurable is Open backed by a persistent engine rooted at stateDir
// (WAL + snapshots, see sqldb.OpenEngine): recovered state — including any
// DML applied in earlier runs — takes precedence, and only CSV files whose
// table does not already exist are (re)loaded. Callers must Close the store
// to release the directory lock and checkpoint cleanly.
func OpenDurable(dir, stateDir string, opts sqldb.Options) (*Store, error) {
	if opts.Name == "" {
		opts.Name = "csv:" + filepath.Base(dir)
	}
	engine, err := sqldb.OpenEngine(stateDir, opts)
	if err != nil {
		return nil, fmt.Errorf("csvdb: %w", err)
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS()
	}
	if err := loadDir(engine, fsys, dir); err != nil {
		engine.Close()
		return nil, err
	}
	return &Store{dir: dir, fs: fsys, engine: engine}, nil
}

// loadDir loads each CSV whose table is not already present in the engine.
func loadDir(engine *sqldb.Engine, fsys vfs.FS, dir string) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("csvdb: %w", err)
	}
	root := engine.NewSession("root")
	var names []string
	for _, name := range entries {
		if !strings.HasSuffix(strings.ToLower(name), ".csv") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, exists := engine.Table(TableName(name)); exists {
			continue // recovered from the durable state; don't re-seed
		}
		if err := loadCSV(root, fsys, filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("csvdb: loading %s: %w", name, err)
		}
	}
	return nil
}

// Close checkpoints and releases a durable store's engine; it is a no-op
// for purely in-memory stores.
func (s *Store) Close() error { return s.engine.Close() }

// Durability reports the store's persistence counters through the same
// backend-agnostic surface as every Conn.
func (s *Store) Durability() core.DurabilityStats {
	return s.Conn("root").Durability()
}

// Engine exposes the underlying engine (e.g. to configure grants).
func (s *Store) Engine() *sqldb.Engine { return s.engine }

// Grants exposes the privilege store.
func (s *Store) Grants() *sqldb.Grants { return s.engine.Grants() }

// Conn opens a BridgeScope-compatible connection as user.
func (s *Store) Conn(user string) core.Conn {
	return core.NewSQLDBConn(s.engine, user)
}

// Explain returns the execution plan the engine would use for sql as user.
// CSV-backed tables plan exactly like native ones — `CREATE INDEX` on a
// loaded table upgrades equality scans to index scans — demonstrating that
// plan metadata flows through the same Conn interface on every backend.
func (s *Store) Explain(user, sql string) (string, error) {
	return s.Conn(user).Explain(sql)
}

// CacheStats reports the store's prepared-statement cache counters. CSV
// stores get the engine's plan cache for free: repeated queries against
// loaded files skip parse+plan exactly like native tables.
func (s *Store) CacheStats() stats.CacheStats {
	return s.engine.PlanCacheSnapshot()
}

// TableName derives the table name from a CSV file name.
func TableName(file string) string {
	base := filepath.Base(file)
	base = strings.TrimSuffix(base, filepath.Ext(base))
	var sb strings.Builder
	for _, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			sb.WriteRune(r + ('a' - 'A'))
		default:
			sb.WriteByte('_')
		}
	}
	name := sb.String()
	if name == "" || name[0] >= '0' && name[0] <= '9' {
		name = "t_" + name
	}
	return name
}

func loadCSV(root *sqldb.Session, fsys vfs.FS, path string) error {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return err
	}
	r := csv.NewReader(bytes.NewReader(data))
	r.TrimLeadingSpace = true
	records, err := r.ReadAll()
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("empty file")
	}
	header := records[0]
	rows := records[1:]
	kinds := inferKinds(header, rows)

	table := TableName(path)
	var ddl strings.Builder
	fmt.Fprintf(&ddl, "CREATE TABLE %s (", table)
	for i, col := range header {
		if i > 0 {
			ddl.WriteString(", ")
		}
		fmt.Fprintf(&ddl, "%s %s", sanitizeIdent(col), kindSQL(kinds[i]))
	}
	ddl.WriteString(")")
	// Seed CREATE + INSERT as one transaction. On a durable engine a bare
	// CREATE would commit on its own, and a subsequent INSERT failure would
	// leave an empty table in the WAL that shadows the CSV on every later
	// open (loadDir skips files whose table already exists).
	if err := root.Begin(); err != nil {
		return err
	}
	if _, err := root.Exec(ddl.String()); err != nil {
		_ = root.Rollback()
		return err
	}
	if len(rows) == 0 {
		return root.Commit()
	}
	var ins strings.Builder
	fmt.Fprintf(&ins, "INSERT INTO %s VALUES ", table)
	for ri, rec := range rows {
		if ri > 0 {
			ins.WriteString(", ")
		}
		ins.WriteString("(")
		for ci := range header {
			if ci > 0 {
				ins.WriteString(", ")
			}
			cell := ""
			if ci < len(rec) {
				cell = rec[ci]
			}
			ins.WriteString(renderCell(cell, kinds[ci]))
		}
		ins.WriteString(")")
	}
	if _, err := root.Exec(ins.String()); err != nil {
		_ = root.Rollback()
		return err
	}
	return root.Commit()
}

func sanitizeIdent(s string) string {
	s = strings.TrimSpace(s)
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			sb.WriteRune(r + ('a' - 'A'))
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out == "" || (out[0] >= '0' && out[0] <= '9') {
		out = "c_" + out
	}
	return out
}

func inferKinds(header []string, rows [][]string) []sqldb.Kind {
	kinds := make([]sqldb.Kind, len(header))
	for c := range header {
		kind := sqldb.KindInt
		sawValue := false
		for _, rec := range rows {
			if c >= len(rec) {
				continue
			}
			cell := strings.TrimSpace(rec[c])
			if cell == "" {
				continue
			}
			sawValue = true
			switch kind {
			case sqldb.KindInt:
				if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
					continue
				}
				kind = sqldb.KindFloat
				fallthrough
			case sqldb.KindFloat:
				if _, err := strconv.ParseFloat(cell, 64); err == nil {
					continue
				}
				kind = sqldb.KindText
			}
			if kind == sqldb.KindText {
				break
			}
		}
		if !sawValue {
			kind = sqldb.KindText
		}
		kinds[c] = kind
	}
	return kinds
}

func kindSQL(k sqldb.Kind) string {
	switch k {
	case sqldb.KindInt:
		return "INTEGER"
	case sqldb.KindFloat:
		return "REAL"
	default:
		return "TEXT"
	}
}

func renderCell(cell string, k sqldb.Kind) string {
	cell = strings.TrimSpace(cell)
	if cell == "" {
		return "NULL"
	}
	switch k {
	case sqldb.KindInt, sqldb.KindFloat:
		return cell
	default:
		return "'" + strings.ReplaceAll(cell, "'", "''") + "'"
	}
}

// Save writes every table back to dir as <table>.csv, persisting any
// modifications made through the toolkit. Each table is exported atomically
// through the vfs seam: rows go to a temp file that is fsynced and then
// renamed over the final name, and the directory is fsynced once at the
// end. A crash mid-export therefore leaves every table either fully old or
// fully new, never torn — and the temp files' ".csv.tmp-*" names fall
// outside the loader's *.csv filter, so a leftover temp is ignored on the
// next open.
func (s *Store) Save(dir string) error {
	if dir == "" {
		dir = s.dir
	}
	if err := s.fs.MkdirAll(dir); err != nil {
		return err
	}
	root := s.engine.NewSession("root")
	for _, name := range s.engine.TableNames() {
		res, err := root.Exec("SELECT * FROM " + name)
		if err != nil {
			return fmt.Errorf("csvdb: dumping %s: %w", name, err)
		}
		if err := s.saveTable(dir, name, res); err != nil {
			return fmt.Errorf("csvdb: exporting %s: %w", name, err)
		}
	}
	return s.fs.SyncDir(dir)
}

// saveTable writes one table's rows to dir/<name>.csv via temp file, fsync,
// and atomic rename.
func (s *Store) saveTable(dir, name string, res *sqldb.Result) error {
	f, err := s.fs.CreateTemp(dir, name+".csv.tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(res.Columns); err != nil {
		return fail(err)
	}
	for _, row := range res.Rows {
		rec := make([]string, len(row))
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := w.Write(rec); err != nil {
			return fail(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, filepath.Join(dir, name+".csv")); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	return nil
}
