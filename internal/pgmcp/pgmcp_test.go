package pgmcp

import (
	"context"
	"strings"
	"testing"

	"bridgescope/internal/core"
	"bridgescope/internal/mcp"
	"bridgescope/internal/sqldb"
)

func baselineClient(t *testing.T, withSchema bool) (*mcp.Client, *sqldb.Engine) {
	t.Helper()
	e := sqldb.NewEngine("base")
	root := e.NewSession("root")
	root.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`)
	root.MustExec(`INSERT INTO t VALUES (1, 'a'), (2, 'b')`)
	e.Grants().Grant("u", sqldb.ActionSelect, "t")
	tk := New(core.NewSQLDBConn(e, "u"), Options{WithSchemaTool: withSchema})
	return mcp.NewClient(mcp.NewServer(tk.Registry())), e
}

func TestToolSurface(t *testing.T) {
	full, _ := baselineClient(t, true)
	tools, err := full.ListTools(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tools) != 2 || tools[0].Name != "get_schema" || tools[1].Name != "execute_sql" {
		t.Fatalf("PG-MCP must expose exactly get_schema + execute_sql, got %v", tools)
	}
	minus, _ := baselineClient(t, false)
	tools, _ = minus.ListTools(context.Background())
	if len(tools) != 1 || tools[0].Name != "execute_sql" {
		t.Fatalf("PG-MCP- must expose only execute_sql, got %v", tools)
	}
}

func TestSchemaDumpHasNoAnnotations(t *testing.T) {
	client, _ := baselineClient(t, true)
	res, err := client.CallTool(context.Background(), "get_schema", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "CREATE TABLE t") {
		t.Fatalf("schema dump missing table: %s", res.Text)
	}
	if strings.Contains(res.Text, "Access:") {
		t.Fatalf("baseline must not annotate privileges: %s", res.Text)
	}
}

func TestExecuteSQLAnyStatement(t *testing.T) {
	client, _ := baselineClient(t, true)
	ctx := context.Background()
	res, err := client.CallTool(ctx, "execute_sql", map[string]any{"sql": "SELECT COUNT(*) FROM t"})
	if err != nil || res.IsErr {
		t.Fatalf("select failed: %v %s", err, res.Text)
	}
	// No tool-side gating: unauthorized writes reach the engine and come
	// back as engine errors.
	res, err = client.CallTool(ctx, "execute_sql", map[string]any{"sql": "DELETE FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsErr || !strings.Contains(res.Text, "permission denied") {
		t.Fatalf("unauthorized delete should yield engine denial: %s", res.Text)
	}
}

func TestInformationSchemaIntrospection(t *testing.T) {
	client, _ := baselineClient(t, false)
	res, err := client.CallTool(context.Background(), "execute_sql", map[string]any{
		"sql": "SELECT table_name, column_name FROM information_schema.columns",
	})
	if err != nil || res.IsErr {
		t.Fatalf("introspection failed: %v %s", err, res.Text)
	}
	if !strings.Contains(res.Text, "CREATE TABLE t") {
		t.Fatalf("introspection should return catalog DDL: %s", res.Text)
	}
}

func TestMissingSQLArgument(t *testing.T) {
	client, _ := baselineClient(t, true)
	res, err := client.CallTool(context.Background(), "execute_sql", map[string]any{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsErr {
		t.Fatalf("missing sql must error: %s", res.Text)
	}
}
