// Package pgmcp implements the baseline toolkit the paper compares against
// (§3.1): PG-MCP, adapted from the official MCP server for PostgreSQL. It
// exposes exactly two tools — get_schema and execute_sql — with no privilege
// annotations, no statement-type restrictions, no user-side policy, no
// transaction tools, and no proxy.
//
// Two variants are used in the evaluation:
//
//   - PG-MCP⁻ (WithSchemaTool=false): only execute_sql, isolating the
//     effect of explicit context-retrieval tools (Fig 5a);
//   - PG-MCP-S: identical tools over a reduced 20-row table (Table 2); the
//     reduction is done in the benchmark fixture, not here.
package pgmcp

import (
	"context"
	"fmt"
	"strings"

	"bridgescope/internal/core"
	"bridgescope/internal/mcp"
)

// Options configures the baseline.
type Options struct {
	// WithSchemaTool controls whether get_schema is exposed. PG-MCP⁻ sets
	// this false.
	WithSchemaTool bool
}

// Toolkit is a configured PG-MCP baseline bound to one connection.
type Toolkit struct {
	conn core.Conn
	reg  *mcp.Registry
}

// New builds the baseline toolkit.
func New(conn core.Conn, opts Options) *Toolkit {
	t := &Toolkit{conn: conn, reg: mcp.NewRegistry()}
	if opts.WithSchemaTool {
		t.reg.Register(&mcp.Tool{
			Name:        "get_schema",
			Description: "Return the schema (DDL) of every table in the database.",
			Handler: func(ctx context.Context, args map[string]any) (any, error) {
				return t.schemaDump(), nil
			},
		})
	}
	t.reg.Register(&mcp.Tool{
		Name:        "execute_sql",
		Description: "Execute an arbitrary SQL statement and return its result.",
		InputSchema: map[string]any{
			"type": "object",
			"properties": map[string]any{
				"sql": map[string]any{"type": "string"},
			},
			"required": []any{"sql"},
		},
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			sql, _ := args["sql"].(string)
			if strings.TrimSpace(sql) == "" {
				return nil, fmt.Errorf("execute_sql: missing required argument \"sql\"")
			}
			// Catalog introspection queries (information_schema) are served
			// from the catalog, as PostgreSQL itself would.
			if strings.Contains(strings.ToLower(sql), "information_schema") {
				return t.schemaDump(), nil
			}
			res, err := t.conn.Exec(sql)
			if err != nil {
				return nil, err
			}
			return toCallResult(res), nil
		},
	})
	return t
}

// Registry returns the baseline's tool registry.
func (t *Toolkit) Registry() *mcp.Registry { return t.reg }

// Conn returns the underlying connection.
func (t *Toolkit) Conn() core.Conn { return t.conn }

// SystemPrompt is the generic ReAct agent prompt used with the baseline —
// standard tool-use guidance, but none of BridgeScope's database protocol
// (no privilege awareness, no transaction discipline, no proxy routing).
func (t *Toolkit) SystemPrompt() string {
	return `You are a capable general-purpose assistant that completes user tasks by
calling tools in a reason-act-observe loop.

Work step by step: think about what the task requires, choose the single
most useful tool call, observe its result, and continue until the task is
done; then reply with a final answer summarizing the outcome for the user.
Never fabricate tool results — only rely on what the tools actually
returned. When a tool call fails, read the error message carefully, decide
whether the failure is recoverable, and adjust your next step accordingly;
do not repeat an identical failing call more than once. Prefer gathering
any information you need before acting, keep your tool arguments precise
and well-formed JSON, and avoid unnecessary calls — every call costs time
and money. If after several attempts the task cannot be completed, explain
to the user exactly what went wrong, what you tried, and stop gracefully
rather than guessing.

For database work, you can inspect the database schema and execute SQL
statements with the provided tools. Write standard, portable SQL:
reference only tables and columns that actually exist in the schema, quote
text literals with single quotes, use explicit column lists rather than
SELECT * when practical, and add LIMIT clauses to exploratory queries.
When the user asks a question about the data, run the appropriate query
and present the result clearly. When the user asks you to change data,
perform the modification and confirm exactly which rows were affected.
Check constraints and foreign keys may reject invalid changes; report such
rejections honestly. Intermediate results from one tool can be included in
the arguments of your next tool call when a later step needs them, for
example passing queried rows to an analysis tool. Be careful to copy such
data exactly as returned, without truncation or alteration.`
}

func (t *Toolkit) schemaDump() string {
	var sb strings.Builder
	for i, o := range t.conn.ListObjects() {
		if i > 0 {
			sb.WriteString("\n\n")
		}
		ddl, err := t.conn.ObjectDDL(o.Name)
		if err != nil {
			continue
		}
		sb.WriteString(ddl)
	}
	if sb.Len() == 0 {
		return "The database has no tables."
	}
	return sb.String()
}

func toCallResult(res *core.Result) mcp.CallResult {
	cr := mcp.CallResult{Text: res.Text()}
	if len(res.Columns) > 0 {
		raw, err := jsonMarshal(map[string]any{"columns": res.Columns, "rows": res.Rows})
		if err == nil {
			cr.Data = raw
		}
	}
	return cr
}
