package pgmcp

import "encoding/json"

func jsonMarshal(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return b, nil
}
