// NL2ML runs one data-intensive workflow end-to-end with a simulated agent:
// extract thousands of rows from the housing database, normalize, train a
// regression model, and predict — comparing BridgeScope's proxy routing
// against the baseline PG-MCP toolkit, which must squeeze the data through
// the model's context window (and fails).
package main

import (
	"context"
	"fmt"
	"log"

	"bridgescope/internal/agent"
	"bridgescope/internal/bench/nl2ml"
	"bridgescope/internal/core"
	"bridgescope/internal/llm"
	"bridgescope/internal/mcp"
	"bridgescope/internal/mltools"
	"bridgescope/internal/pgmcp"
)

func main() {
	const seed = 7
	// A smaller table than the benchmark's 20,000 rows keeps the example
	// quick; it is still far too large to route through a context window.
	engine := nl2ml.BuildHouseEngine(seed, 20000)
	user := nl2ml.SetupUser(engine)

	// A level-3 task: extract -> normalize -> train -> predict.
	var t = nl2ml.GenerateTasks()[20] // first level-3 task
	fmt.Println("Task:", t.NL)

	model := llm.NewSim(llm.Claude4(), seed)

	// --- BridgeScope: the agent abstracts the workflow into a proxy unit.
	conn := core.NewSQLDBConn(engine, user)
	tk := core.New(conn, core.Policy{})
	mltools.NewServer(seed).RegisterTools(tk.Registry())
	a := &agent.Agent{Model: model, Client: tk.Client(), SystemPrompt: tk.SystemPrompt()}
	met, err := a.Run(context.Background(), t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== BridgeScope ===")
	printMetrics(met)

	// --- PG-MCP: the same task fails when the extracted rows no longer
	// fit in the context window.
	conn2 := core.NewSQLDBConn(engine, user)
	base := pgmcp.New(conn2, pgmcp.Options{WithSchemaTool: true})
	mltools.NewServer(seed).RegisterTools(base.Registry())
	a2 := &agent.Agent{
		Model:        model,
		Client:       mcp.NewClient(mcp.NewServer(base.Registry())),
		SystemPrompt: base.SystemPrompt(),
	}
	met2, err := a2.Run(context.Background(), t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== PG-MCP (baseline) ===")
	printMetrics(met2)
}

func printMetrics(m *agent.Metrics) {
	switch {
	case m.Completed:
		fmt.Println("outcome:        completed")
		fmt.Println("final answer:  ", firstLine(m.FinalAnswer))
	case m.ContextExhausted:
		fmt.Println("outcome:        FAILED — context window exhausted routing data through the LLM")
	case m.Aborted:
		fmt.Println("outcome:        aborted —", m.AbortReason)
	default:
		fmt.Println("outcome:        did not finish")
	}
	fmt.Printf("LLM calls:      %d\n", m.LLMCalls)
	fmt.Printf("tokens:         %d (prompt %d, completion %d)\n",
		m.TotalTokens(), m.PromptTokens, m.CompletionTokens)
	fmt.Printf("tool calls:     %d\n", m.ToolCalls)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			// The result payload follows; show only the headline.
			if i+1 < len(s) {
				return s[i+1:]
			}
			return s[:i]
		}
	}
	return s
}
