// Quickstart: stand up an embedded database, wrap it in a BridgeScope
// toolkit, and drive the tools the way an LLM agent would — schema
// retrieval, exemplar lookup, per-action SQL execution, and a transaction.
package main

import (
	"context"
	"fmt"
	"log"

	"bridgescope/internal/core"
	"bridgescope/internal/sqldb"
)

func main() {
	// 1. An embedded database with a schema, some data, and a user.
	engine := sqldb.NewEngine("quickstart")
	root := engine.NewSession("root")
	root.MustExec(`CREATE TABLE products (
		id INT PRIMARY KEY, name TEXT NOT NULL, category TEXT, price REAL)`)
	root.MustExec(`INSERT INTO products VALUES
		(1, 'shirt', 'women', 19.99),
		(2, 'jeans', 'men', 49.50),
		(3, 'sneakers', 'shoes', 79.00)`)
	engine.Grants().GrantAll("alice", "products")

	// 2. A BridgeScope toolkit bound to alice's connection.
	conn := core.NewSQLDBConn(engine, "alice")
	toolkit := core.New(conn, core.Policy{})
	client := toolkit.Client()
	ctx := context.Background()

	// 3. Context retrieval: the schema arrives annotated with alice's
	// privileges.
	schema, err := client.CallTool(ctx, "get_schema", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- get_schema ---")
	fmt.Println(schema.Text)

	// 4. Exemplar retrieval grounds value predicates.
	values, err := client.CallTool(ctx, "get_value", map[string]any{
		"table": "products", "column": "category", "key": "women's wear",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- get_value ---")
	fmt.Println(values.Text)

	// 5. Fine-grained SQL execution: the select tool accepts only SELECT.
	rows, err := client.CallTool(ctx, "select", map[string]any{
		"sql": "SELECT name, price FROM products WHERE category = 'women'",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- select ---")
	fmt.Println(rows.Text)

	// Statement-type mismatches are rejected before touching the database.
	bad, _ := client.CallTool(ctx, "select", map[string]any{
		"sql": "DROP TABLE products",
	})
	fmt.Println("\n--- select with a DROP statement ---")
	fmt.Println(bad.Text)

	// 6. Transactions: atomically add a product and reprice the range.
	for _, step := range []struct {
		tool string
		args map[string]any
	}{
		{"begin", nil},
		{"insert", map[string]any{"sql": "INSERT INTO products VALUES (4, 'scarf', 'women', 9.99)"}},
		{"update", map[string]any{"sql": "UPDATE products SET price = price * 1.1 WHERE category = 'women'"}},
		{"commit", nil},
	} {
		res, err := client.CallTool(ctx, step.tool, step.args)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s ---\n%s\n", step.tool, res.Text)
	}

	final, err := client.CallTool(ctx, "select", map[string]any{
		"sql": "SELECT * FROM products ORDER BY id",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- final state ---")
	fmt.Println(final.Text)
}
