// Multisource demonstrates the paper's §2.6 claim that BridgeScope is
// database-agnostic: the same toolkit, tools, and agent-facing behaviour
// over two different data sources — the embedded SQL engine and a directory
// of CSV files — plus a proxy unit that joins insight across them.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bridgescope/internal/core"
	"bridgescope/internal/csvdb"
	"bridgescope/internal/mcp"
	"bridgescope/internal/mltools"
	"bridgescope/internal/sqldb"
)

func main() {
	ctx := context.Background()

	// Datasource 1: the embedded relational engine with live sales.
	engine := sqldb.NewEngine("warehouse")
	root := engine.NewSession("root")
	root.MustExec(`CREATE TABLE sales (day INT PRIMARY KEY, revenue REAL)`)
	for day := 1; day <= 10; day++ {
		root.MustExec(fmt.Sprintf("INSERT INTO sales VALUES (%d, %f)", day, 100+float64(day)*12))
	}
	engine.Grants().GrantAll("analyst", "sales")
	sqlToolkit := core.New(core.NewSQLDBConn(engine, "analyst"), core.Policy{})

	// Datasource 2: a directory of CSV exports (e.g. from another team).
	dir, err := os.MkdirTemp("", "csv-source")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	csvBody := "day,refunds\n1,12.5\n2,11.0\n3,14.0\n4,16.5\n5,18.0\n6,21.0\n7,22.5\n8,25.0\n9,27.5\n10,31.0\n"
	if err := os.WriteFile(filepath.Join(dir, "refunds.csv"), []byte(csvBody), 0o644); err != nil {
		log.Fatal(err)
	}
	store, err := csvdb.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	store.Grants().GrantAll("analyst", "refunds")
	csvToolkit := core.New(store.Conn("analyst"), core.Policy{})

	// The exact same tool names and semantics on both sources.
	fmt.Println("--- SQL-engine source, get_schema ---")
	printTool(ctx, sqlToolkit, "get_schema", nil)
	fmt.Println("\n--- CSV source, get_schema ---")
	printTool(ctx, csvToolkit, "get_schema", nil)

	// A cross-source workflow: the CSV toolkit's registry also gets the
	// sales table exposed via a bridge tool registered from the other
	// toolkit, and trend_analyze consumes both series through one proxy.
	mltools.NewServer(1).RegisterTools(csvToolkit.Registry())
	csvToolkit.Registry().Register(&mcp.Tool{
		Name:        "warehouse_select",
		Description: "Run a SELECT against the warehouse SQL datasource.",
		Handler: func(ctx context.Context, args map[string]any) (any, error) {
			res, err := sqlToolkit.Client().CallTool(ctx, "select", args)
			if err != nil {
				return nil, err
			}
			return res, nil
		},
	})

	fmt.Println("\n--- cross-source trend analysis via proxy ---")
	printTool(ctx, csvToolkit, "proxy", map[string]any{
		"target_tool": "trend_analyze",
		"tool_args": map[string]any{
			"sales": map[string]any{
				"__tool__":      "warehouse_select",
				"__args__":      map[string]any{"sql": "SELECT revenue FROM sales ORDER BY day"},
				"__transform__": "vector:revenue",
			},
			"refunds": map[string]any{
				"__tool__":      "select",
				"__args__":      map[string]any{"sql": "SELECT refunds FROM refunds ORDER BY day"},
				"__transform__": "vector:refunds",
			},
		},
	})
}

func printTool(ctx context.Context, tk *core.Toolkit, tool string, args map[string]any) {
	res, err := tk.Client().CallTool(ctx, tool, args)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Text)
}
