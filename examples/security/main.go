// Security demonstrates BridgeScope's two-level security model (paper
// §2.3): database-side privileges decide which SQL tools each user even
// sees, user-side policies hide sensitive objects and block dangerous
// tools, and object-level verification intercepts anything that slips
// through — including prompt-injection-style statements.
package main

import (
	"context"
	"fmt"
	"log"

	"bridgescope/internal/core"
	"bridgescope/internal/sqldb"
)

func main() {
	engine := sqldb.NewEngine("hr")
	root := engine.NewSession("root")
	root.MustExec(`CREATE TABLE employees (id INT PRIMARY KEY, name TEXT, dept TEXT)`)
	root.MustExec(`CREATE TABLE salaries (emp_id INT REFERENCES employees(id), amount REAL, id INT PRIMARY KEY)`)
	root.MustExec(`CREATE TABLE projects (id INT PRIMARY KEY, name TEXT, budget REAL)`)
	root.MustExec(`INSERT INTO employees VALUES (1, 'Ada', 'eng'), (2, 'Grace', 'eng'), (3, 'Alan', 'ops')`)
	root.MustExec(`INSERT INTO salaries VALUES (1, 180000, 1), (2, 175000, 2), (3, 120000, 3)`)
	root.MustExec(`INSERT INTO projects VALUES (1, 'atlas', 50000), (2, 'borealis', 120000)`)

	g := engine.Grants()
	g.Grant("analyst", sqldb.ActionSelect, "employees")
	g.Grant("analyst", sqldb.ActionSelect, "projects")
	g.GrantAll("hr_admin", "*")

	ctx := context.Background()

	// --- 1. Tool exposure follows privileges: the read-only analyst gets
	// only the select tool; the admin receives full CRUD.
	analystTk := core.New(core.NewSQLDBConn(engine, "analyst"), core.Policy{})
	adminTk := core.New(core.NewSQLDBConn(engine, "hr_admin"), core.Policy{})
	fmt.Println("analyst SQL tools: ", analystTk.ExposedSQLTools())
	fmt.Println("hr_admin SQL tools:", adminTk.ExposedSQLTools())

	// --- 2. User-side policy: hide the salary table from the LLM entirely
	// and block the drop tool even for the admin.
	guarded := core.New(core.NewSQLDBConn(engine, "hr_admin"), core.Policy{
		ObjectBlacklist: []string{"salaries"},
		ToolBlacklist:   []string{"drop_table"},
	})
	fmt.Println("\nguarded admin SQL tools:", guarded.ExposedSQLTools())
	schema, err := guarded.Client().CallTool(ctx, "get_schema", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- schema as the guarded admin sees it (no salaries) ---")
	fmt.Println(schema.Text)

	// --- 3. Object-level verification intercepts policy violations before
	// the engine sees them — e.g. a prompt-injected salary exfiltration.
	injected, _ := guarded.Client().CallTool(ctx, "select", map[string]any{
		"sql": "SELECT name, amount FROM employees, salaries WHERE employees.id = salaries.emp_id",
	})
	fmt.Println("\n--- injected salary query ---")
	fmt.Println(injected.Text)

	// --- 4. The analyst's missing privileges are likewise caught at the
	// tool layer, sparing the database the rejected statement.
	denied, _ := analystTk.Client().CallTool(ctx, "select", map[string]any{
		"sql": "SELECT * FROM salaries",
	})
	fmt.Println("\n--- analyst probing salaries ---")
	fmt.Println(denied.Text)

	// --- 5. And a destructive statement cannot reach the engine at all:
	// the guarded admin has no drop tool, and the select tool refuses
	// non-SELECT statements.
	smuggled, _ := guarded.Client().CallTool(ctx, "select", map[string]any{
		"sql": "DROP TABLE employees",
	})
	fmt.Println("\n--- smuggled DROP statement ---")
	fmt.Println(smuggled.Text)

	if _, err := guarded.Client().CallTool(ctx, "drop_table", map[string]any{
		"sql": "DROP TABLE employees",
	}); err != nil {
		fmt.Println("\n--- drop_table tool ---")
		fmt.Println("unavailable:", err)
	}

	// The data is intact.
	check, err := adminTk.Client().CallTool(ctx, "select", map[string]any{
		"sql": "SELECT COUNT(*) FROM employees",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nemployees table still holds:", check.Text)
}
