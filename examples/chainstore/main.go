// Chainstore reproduces the paper's running example (Figure 3): a Brand A
// store manager's daily routine — atomically insert the day's sales and
// refunds, then analyze recent trends by routing the query results straight
// into an ML tool through the proxy, without the data ever entering the LLM
// context.
package main

import (
	"context"
	"fmt"
	"log"

	"bridgescope/internal/core"
	"bridgescope/internal/mltools"
	"bridgescope/internal/sqldb"
)

func main() {
	engine := buildStore()

	// The Brand A manager has full access to brand_a_* tables and none to
	// brand_b_sales — the privilege annotations in get_schema make that
	// visible to the agent up front.
	g := engine.Grants()
	g.GrantAll("manager_a", "brand_a_items")
	g.GrantAll("manager_a", "brand_a_sales")
	g.GrantAll("manager_a", "brand_a_refunds")

	conn := core.NewSQLDBConn(engine, "manager_a")
	toolkit := core.New(conn, core.Policy{})
	mltools.NewServer(1).RegisterTools(toolkit.Registry())
	client := toolkit.Client()
	ctx := context.Background()

	// Step 1 (F1): retrieve the schema.
	schema, err := client.CallTool(ctx, "get_schema", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- schema with privilege annotations ---")
	fmt.Println(schema.Text)

	// Step 2 (F2+F3): atomically insert today's sales and refunds.
	steps := []struct {
		tool string
		args map[string]any
	}{
		{"begin", nil},
		{"insert", map[string]any{"sql": `INSERT INTO brand_a_sales (order_id, item_id, qty, amount, day) VALUES
			(9001, 1, 2, 39.98, 15), (9002, 2, 1, 49.50, 15), (9003, 3, 4, 31.96, 15)`}},
		{"insert", map[string]any{"sql": `INSERT INTO brand_a_refunds (refund_id, order_id, amount, day) VALUES
			(901, 9001, 19.99, 15)`}},
		{"commit", nil},
	}
	for _, s := range steps {
		res, err := client.CallTool(ctx, s.tool, s.args)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s -> %s\n", s.tool, res.Text)
	}

	// Step 3 (F4): analyze sales and refund trends. The proxy runs both
	// SELECT producers in parallel and feeds their outputs directly into
	// trend_analyze — the LLM sees only the verdict.
	trends, err := client.CallTool(ctx, "proxy", map[string]any{
		"target_tool": "trend_analyze",
		"tool_args": map[string]any{
			"sales": map[string]any{
				"__tool__":      "select",
				"__args__":      map[string]any{"sql": "SELECT day, SUM(amount) AS total FROM brand_a_sales GROUP BY day ORDER BY day"},
				"__transform__": "vector:total",
			},
			"refunds": map[string]any{
				"__tool__":      "select",
				"__args__":      map[string]any{"sql": "SELECT day, SUM(amount) AS total FROM brand_a_refunds GROUP BY day ORDER BY day"},
				"__transform__": "vector:total",
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- trend analysis (via proxy) ---")
	fmt.Println(trends.Text)

	// Attempting to touch Brand B's data is intercepted before the engine.
	blocked, _ := client.CallTool(ctx, "select", map[string]any{
		"sql": "SELECT * FROM brand_b_sales",
	})
	fmt.Println("\n--- cross-brand access attempt ---")
	fmt.Println(blocked.Text)
}

// buildStore creates the two-brand retail database with two weeks of
// history so the trend analysis has a series to work on.
func buildStore() *sqldb.Engine {
	engine := sqldb.NewEngine("chainstore")
	root := engine.NewSession("root")
	root.MustExec(`CREATE TABLE brand_a_items (
		id INT PRIMARY KEY, name TEXT NOT NULL, price REAL)`)
	root.MustExec(`CREATE TABLE brand_a_sales (
		order_id INT PRIMARY KEY, item_id INT REFERENCES brand_a_items(id),
		qty INT NOT NULL, amount REAL, day INT)`)
	root.MustExec(`CREATE TABLE brand_a_refunds (
		refund_id INT PRIMARY KEY, order_id INT, amount REAL, day INT)`)
	root.MustExec(`CREATE TABLE brand_b_sales (
		order_id INT PRIMARY KEY, amount REAL, day INT)`)

	root.MustExec(`INSERT INTO brand_a_items VALUES (1, 'shirt', 19.99), (2, 'jeans', 49.50), (3, 'socks', 7.99)`)
	// 14 days of gently rising sales with a refund every few days.
	oid, rid := 1000, 100
	for day := 1; day <= 14; day++ {
		for k := 0; k < 2+day/4; k++ {
			oid++
			item := 1 + (oid % 3)
			amount := 20.0 + float64(day)*1.5 + float64(k)*3
			root.MustExec(fmt.Sprintf(
				"INSERT INTO brand_a_sales VALUES (%d, %d, 1, %.2f, %d)", oid, item, amount, day))
		}
		if day%3 == 0 {
			rid++
			root.MustExec(fmt.Sprintf(
				"INSERT INTO brand_a_refunds VALUES (%d, %d, %.2f, %d)", rid, oid, 9.5, day))
		}
	}
	root.MustExec(`INSERT INTO brand_b_sales VALUES (1, 100.0, 1), (2, 120.0, 2)`)
	return engine
}
