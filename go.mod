module bridgescope

go 1.24
