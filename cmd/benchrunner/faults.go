package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"bridgescope/internal/sqldb"
	"bridgescope/internal/sqldb/crashsim"
	"bridgescope/internal/sqldb/vfs"
)

// printFaults measures the cost of the fault-injection seam and the recovery
// path behind it:
//
//   - VFS indirection overhead: the same write+fsync loop through a raw
//     *os.File and through vfs.OS(), plus the BenchmarkCommitDurable* modes
//     (whose whole I/O stack now runs through the seam). The acceptance bar
//     is <2% on the commit path.
//   - Recovery time vs WAL tail length: engines with ~500/5k/20k unflushed
//     commit frames are crashed via a FaultFS process-kill image and the
//     reopen (snapshot load + WAL replay) is timed.
//   - A bounded crash-simulator run, for the record: crash points tested
//     and violations found (always expected to be zero).
//
// Results go to BENCH_PR8.json.
func printFaults(seed int64) error {
	header("Faults — VFS seam overhead, recovery time, crash simulation")

	type benchOut struct {
		Name    string  `json:"name"`
		Ops     int     `json:"ops"`
		NsPerOp float64 `json:"ns_per_op"`
	}
	var commitBenches []benchOut

	// -- 1. raw os vs vfs.OS() on the exact syscall pair WAL commits pay --
	buf := make([]byte, 4096)
	dir, err := os.MkdirTemp("", "vfsbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// fsync latency on shared storage is noisy and drifts over a run, so a
	// single A-then-B comparison reports drift as overhead. Alternate the
	// two several times and compare each side's median round: the
	// indirection cost survives, the noise mostly cancels.
	benchDirect := func(b *testing.B) {
		f, err := os.OpenFile(filepath.Join(dir, "direct"), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Write(buf); err != nil {
				b.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
	benchVFS := func(b *testing.B) {
		f, err := vfs.OS().OpenFile(filepath.Join(dir, "vfs"), vfs.O_CREATE|vfs.O_WRONLY|vfs.O_APPEND|vfs.O_TRUNC)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.Write(buf); err != nil {
				b.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
	var directRounds, vfsRounds []float64
	for round := 0; round < 9; round++ {
		directRounds = append(directRounds, float64(testing.Benchmark(benchDirect).NsPerOp()))
		vfsRounds = append(vfsRounds, float64(testing.Benchmark(benchVFS).NsPerOp()))
	}
	directNs, vfsNs := median(directRounds), median(vfsRounds)
	overheadPct := (vfsNs - directNs) / directNs * 100
	fmt.Printf("write+fsync 4KiB: direct %.0f ns/op, via vfs %.0f ns/op (%+.2f%%)\n",
		directNs, vfsNs, overheadPct)

	// -- 2. the commit path itself, per sync mode --
	for _, mode := range []sqldb.SyncMode{sqldb.SyncAlways, sqldb.SyncBatch, sqldb.SyncOff} {
		mode := mode
		r := testing.Benchmark(func(b *testing.B) {
			d, err := os.MkdirTemp("", "commitbench")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(d)
			e, err := sqldb.OpenEngine(d, sqldb.Options{Sync: mode, CheckpointEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			s := e.NewSession("root")
			s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, val REAL)`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1.0)", i))
			}
		})
		name := "CommitDurable/" + mode.String()
		commitBenches = append(commitBenches, benchOut{name, r.N, float64(r.NsPerOp())})
		fmt.Printf("%-28s %10d ops %12.0f ns/op\n", name, r.N, float64(r.NsPerOp()))
	}

	// -- 3. recovery time vs WAL tail length --
	type recoveryOut struct {
		Frames       int     `json:"frames"`
		Runs         int     `json:"runs"`
		MeanMs       float64 `json:"mean_ms"`
		FramesPerSec float64 `json:"frames_per_sec"`
	}
	var recoveries []recoveryOut
	for _, frames := range []int{500, 5000, 20000} {
		fs := vfs.NewFaultFS()
		e, err := sqldb.OpenEngine("/db", sqldb.Options{Sync: sqldb.SyncOff, CheckpointEvery: -1, FS: fs})
		if err != nil {
			return err
		}
		s := e.NewSession("root")
		s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, val REAL)`)
		for i := 0; i < frames; i++ {
			s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1.0)", i))
		}
		// Crash before any checkpoint: recovery must replay the full tail.
		img := fs.CrashImage(vfs.TearKill, seed)
		e.Close()

		const runs = 3
		var total time.Duration
		for r := 0; r < runs; r++ {
			// Each run recovers a fresh copy of the wreckage so truncation
			// or sweeping by run r doesn't shorten run r+1.
			cp := img.CrashImage(vfs.TearKill, seed)
			start := time.Now()
			re, err := sqldb.OpenEngine("/db", sqldb.Options{Sync: sqldb.SyncOff, CheckpointEvery: -1, FS: cp})
			if err != nil {
				return fmt.Errorf("recovery with %d frames: %w", frames, err)
			}
			total += time.Since(start)
			res := re.NewSession("root").MustExec("SELECT COUNT(*) FROM t")
			if got := res.Rows[0][0].I; got != int64(frames) {
				return fmt.Errorf("recovery with %d frames: %d rows survived", frames, got)
			}
			re.Close()
		}
		mean := total / runs
		recoveries = append(recoveries, recoveryOut{
			Frames:       frames,
			Runs:         runs,
			MeanMs:       float64(mean.Microseconds()) / 1000,
			FramesPerSec: float64(frames) / mean.Seconds(),
		})
		fmt.Printf("recovery of %6d-frame WAL tail: mean %8.2f ms (%.0f frames/s)\n",
			frames, float64(mean.Microseconds())/1000, float64(frames)/mean.Seconds())
	}

	// -- 4. bounded crash-simulator run for the record --
	rep, err := crashsim.Run(crashsim.Config{Seed: seed, Ops: 12, Sync: sqldb.SyncBatch, MaxPoints: 60})
	if err != nil {
		return err
	}
	if rep.WorkloadErr != nil {
		return fmt.Errorf("crashsim workload: %w", rep.WorkloadErr)
	}
	fmt.Printf("crashsim: %d commits, %d I/O steps, %d points x 3 policies, %d violations\n",
		rep.Commits, rep.Steps, rep.Points, len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}

	out := struct {
		Experiment         string        `json:"experiment"`
		WriteSyncDirectNs  float64       `json:"write_sync_direct_ns"`
		WriteSyncVFSNs     float64       `json:"write_sync_vfs_ns"`
		VFSOverheadPct     float64       `json:"vfs_indirection_overhead_pct"`
		CommitBenches      []benchOut    `json:"commit_durable"`
		Recoveries         []recoveryOut `json:"recovery_vs_wal_tail"`
		CrashSimCommits    int           `json:"crashsim_commits"`
		CrashSimSteps      int           `json:"crashsim_steps"`
		CrashSimPoints     int           `json:"crashsim_points"`
		CrashSimViolations int           `json:"crashsim_violations"`
	}{
		Experiment:         "faults",
		WriteSyncDirectNs:  directNs,
		WriteSyncVFSNs:     vfsNs,
		VFSOverheadPct:     overheadPct,
		CommitBenches:      commitBenches,
		Recoveries:         recoveries,
		CrashSimCommits:    rep.Commits,
		CrashSimSteps:      rep.Steps,
		CrashSimPoints:     rep.Points,
		CrashSimViolations: len(rep.Violations),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_PR8.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_PR8.json")
	return nil
}

// median returns the middle value of xs (sorted copy; xs is non-empty).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
