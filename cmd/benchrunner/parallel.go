package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bridgescope/internal/core"
	"bridgescope/internal/sqldb"
)

// printParallel measures the PR6 execution work: morsel-driven batched
// operators (seq scan + filter, hash aggregation, hash join) against the
// row-at-a-time baseline, disjoint-table writer throughput under the
// per-table lock manager against the old single-writeMu behavior, and the
// hot-row conflict bench with exponential-backoff retries. Results land in
// BENCH_PR6.json.
func printParallel() error {
	header("Engine — parallel batched execution + sharded write locks")

	type benchOut struct {
		Name    string  `json:"name"`
		Ops     int     `json:"ops"`
		NsPerOp float64 `json:"ns_per_op"`
	}
	var results []benchOut
	report := func(name string, r testing.BenchmarkResult) float64 {
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		fmt.Printf("%-36s %10d ops %12.0f ns/op\n", name, r.N, ns)
		results = append(results, benchOut{Name: name, Ops: r.N, NsPerOp: ns})
		return ns
	}

	// --- Read side: batched operators vs row-at-a-time ---
	const bigRows = 40000
	const workers = 4
	e := sqldb.NewEngine("parallel")
	e.SetParallelism(workers, 1024)
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE big (id INT PRIMARY KEY, grp INT, val REAL)`)
	s.MustExec(`CREATE TABLE dim (id INT PRIMARY KEY, label TEXT)`)
	for i := 0; i < bigRows; i += 500 {
		var b strings.Builder
		b.WriteString("INSERT INTO big VALUES ")
		for j := i; j < i+500; j++ {
			if j > i {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d, %d.5)", j, j%64, j%10000)
		}
		s.MustExec(b.String())
	}
	var dims []string
	for i := 0; i < 64; i++ {
		dims = append(dims, fmt.Sprintf("(%d, 'g%d')", i, i))
	}
	s.MustExec("INSERT INTO dim VALUES " + strings.Join(dims, ", "))

	seq := e.NewSession("root")
	seq.SetParallel(false)

	benchStmt := func(sess *sqldb.Session, sql string) testing.BenchmarkResult {
		stmt, err := sqldb.Parse(sql)
		if err != nil {
			panic(err)
		}
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sess.ExecStmt(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	const (
		scanQ  = "SELECT COUNT(*) FROM big WHERE val < 2500.0"
		groupQ = "SELECT grp, COUNT(*), SUM(val), AVG(val) FROM big GROUP BY grp"
		joinQ  = "SELECT COUNT(*) FROM big JOIN dim ON big.grp = dim.id WHERE big.val < 5000.0"
	)
	fmt.Println(s.MustExec("EXPLAIN " + scanQ).Text())
	scanPar := report("ParallelSeqScan", benchStmt(s, scanQ))
	scanSeq := report("SeqScanBaseline", benchStmt(seq, scanQ))
	groupPar := report("ParallelGroupBy", benchStmt(s, groupQ))
	groupSeq := report("GroupByBaseline", benchStmt(seq, groupQ))
	joinPar := report("ParallelHashJoin", benchStmt(s, joinQ))
	joinSeq := report("HashJoinBaseline", benchStmt(seq, joinQ))
	fmt.Printf("\nbatched speedups at %d workers: seq scan %.2fx, group by %.2fx, hash join %.2fx\n",
		workers, scanSeq/scanPar, groupSeq/groupPar, joinSeq/joinPar)

	// Release the 40k-row read-side engine before the write benches; a live
	// multi-megabyte heap skews whichever bench runs first.
	e, s, seq = nil, nil, nil
	runtime.GC()

	// --- Write side: disjoint-table writers, per-table locks vs global.
	// Each writer cycles over a small set of point updates on its own table,
	// so statements hit the plan cache (which also caches the lock set) and
	// the measurement isolates lock overhead + contention rather than
	// parse/plan cost. Alternate the two modes and keep each mode's best of three runs:
	// on this box GC drift across runs is larger than the effect measured. ---
	const writerTables = 4
	const writerKeys = 8
	runWriters := func(globalOnly bool) (float64, sqldb.LockStats) {
		runtime.GC()
		we := sqldb.NewEngine("writers")
		we.SetGlobalWriteLock(globalOnly)
		ws := we.NewSession("root")
		stmts := make([][]string, writerTables)
		for w := 0; w < writerTables; w++ {
			ws.MustExec(fmt.Sprintf("CREATE TABLE w%d (id INT PRIMARY KEY, n INT)", w))
			for i := 0; i < writerKeys; i++ {
				ws.MustExec(fmt.Sprintf("INSERT INTO w%d VALUES (%d, 0)", w, i))
				stmts[w] = append(stmts[w], fmt.Sprintf("UPDATE w%d SET n = n + 1 WHERE id = %d", w, i))
			}
		}
		var widSeq atomic.Int64
		r := testing.Benchmark(func(b *testing.B) {
			b.SetParallelism(max(1, (writerTables+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
			b.RunParallel(func(pb *testing.PB) {
				wid := int(widSeq.Add(1)-1) % writerTables
				qs := stmts[wid]
				sess := we.NewSession("root")
				i := 0
				for pb.Next() {
					sess.MustExec(qs[i%writerKeys])
					i++
				}
			})
		})
		return float64(r.T.Nanoseconds()) / float64(r.N), we.LockStats()
	}
	shardedNs, globalNs := 0.0, 0.0
	var shardedStats sqldb.LockStats
	for round := 0; round < 3; round++ {
		gNs, _ := runWriters(true)
		if globalNs == 0 || gNs < globalNs {
			globalNs = gNs
		}
		sNs, sStats := runWriters(false)
		if shardedNs == 0 || sNs < shardedNs {
			shardedNs, shardedStats = sNs, sStats
		}
	}
	fmt.Printf("%-36s %12.0f ns/op (best of 3)\n", "DisjointTableWriters", shardedNs)
	fmt.Printf("%-36s %12.0f ns/op (best of 3)\n", "DisjointWritersGlobalLock", globalNs)
	results = append(results,
		benchOut{Name: "DisjointTableWriters", NsPerOp: shardedNs},
		benchOut{Name: "DisjointWritersGlobalLock", NsPerOp: globalNs})

	// --- The workload the old engine-wide writeMu hurt most: a point writer
	// sharing the engine with a bulk writer that runs ~50ms full-table
	// UPDATEs on a different table. Under the global lock a point update can
	// stall behind the whole in-flight bulk statement (stalls are rare but
	// huge, so the mean and the worst-case stall are the honest metrics — p99
	// sits below the stall frequency); per-table locks never lock-stall it,
	// leaving only scheduler preemption. ---
	type latency struct{ mean, p50, p99, max float64 }
	runMixed := func(globalOnly bool) latency {
		runtime.GC()
		we := sqldb.NewEngine("mixed")
		we.SetGlobalWriteLock(globalOnly)
		ws := we.NewSession("root")
		ws.MustExec("CREATE TABLE bulk (id INT PRIMARY KEY, n INT)")
		for i := 0; i < 20000; i += 500 {
			var sb strings.Builder
			sb.WriteString("INSERT INTO bulk VALUES ")
			for j := i; j < i+500; j++ {
				if j > i {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "(%d, 0)", j)
			}
			ws.MustExec(sb.String())
		}
		ws.MustExec("CREATE TABLE pt (id INT PRIMARY KEY, n INT)")
		var pointQs []string
		for i := 0; i < writerKeys; i++ {
			ws.MustExec(fmt.Sprintf("INSERT INTO pt VALUES (%d, 0)", i))
			pointQs = append(pointQs, fmt.Sprintf("UPDATE pt SET n = n + 1 WHERE id = %d", i))
		}
		stop := make(chan struct{})
		done := make(chan struct{})
		started := make(chan struct{})
		go func() {
			defer close(done)
			bulk := we.NewSession("root")
			close(started)
			for {
				select {
				case <-stop:
					return
				default:
					bulk.MustExec("UPDATE bulk SET n = n + 1 WHERE id >= 0")
				}
			}
		}()
		<-started
		// Let the bulk writer get into its first statement before measuring.
		time.Sleep(100 * time.Millisecond)
		// Fixed wall time covering many ~50ms bulk statements; ops completed
		// in the window is the throughput number.
		const window = 2500 * time.Millisecond
		durs := make([]time.Duration, 0, 1<<20)
		sess := we.NewSession("root")
		start := time.Now()
		for i := 0; time.Since(start) < window; i++ {
			t0 := time.Now()
			sess.MustExec(pointQs[i%writerKeys])
			durs = append(durs, time.Since(t0))
		}
		close(stop)
		<-done
		ops := len(durs)
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		var sum time.Duration
		for _, d := range durs {
			sum += d
		}
		return latency{
			mean: float64(sum.Nanoseconds()) / float64(ops),
			p50:  float64(durs[ops/2].Nanoseconds()),
			p99:  float64(durs[ops*99/100].Nanoseconds()),
			max:  float64(durs[ops-1].Nanoseconds()),
		}
	}
	mixedSharded := runMixed(false)
	mixedGlobal := runMixed(true)
	for _, m := range []struct {
		name string
		lat  latency
	}{
		{"PointWriterBesideBulkWriter", mixedSharded},
		{"PointWriterBesideBulkGlobalLock", mixedGlobal},
	} {
		fmt.Printf("%-36s mean %9.0f ns  p50 %9.0f  p99 %11.0f  max %11.0f\n",
			m.name, m.lat.mean, m.lat.p50, m.lat.p99, m.lat.max)
		results = append(results, benchOut{Name: m.name, NsPerOp: m.lat.mean})
	}
	fmt.Printf("\nuniform disjoint writers: %.2fx vs the single global write lock (max %d writers inside statements at once)\n",
		globalNs/shardedNs, shardedStats.MaxConcurrentWriters)
	fmt.Printf("point writer beside a bulk writer: %.1fx mean throughput, worst stall %.0fms vs %.0fms under the global lock\n",
		mixedGlobal.mean/mixedSharded.mean, mixedSharded.max/1e6, mixedGlobal.max/1e6)

	// --- Conflict storm: hot-row increments through the retry loop, now
	// with exponential backoff + jitter between attempts ---
	runtime.GC()
	ec := sqldb.NewEngine("conflict")
	sc := ec.NewSession("root")
	sc.MustExec(`CREATE TABLE c (id INT PRIMARY KEY, n INT)`)
	sc.MustExec(`INSERT INTO c VALUES (1, 0)`)
	var attempts atomic.Int64
	var conflictsBefore int64
	conflictNs := report("ConflictRetryIncrement", testing.Benchmark(func(b *testing.B) {
		// testing.Benchmark re-runs this closure while calibrating b.N; reset
		// the counters so the report reflects only the final measured run.
		attempts.Store(0)
		conflictsBefore = ec.WriteConflicts()
		b.SetParallelism(max(1, (4+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
		b.RunParallel(func(pb *testing.PB) {
			conn := core.NewSQLDBConn(ec, "root")
			for pb.Next() {
				err := core.RunInTransaction(conn, 100, func(c core.Conn) error {
					attempts.Add(1)
					_, err := c.Exec("UPDATE c SET n = n + 1 WHERE id = 1")
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}))
	conflicts := ec.WriteConflicts() - conflictsBefore
	rate := 0.0
	if a := attempts.Load(); a > 0 {
		rate = float64(conflicts) / float64(a)
	}
	fmt.Printf("\nconflict bench with backoff: %d attempts, %d conflicts (%.1f%% of attempts, %.0f ns per committed increment) — PR5 recorded 339677 attempts at 61%% without backoff\n",
		attempts.Load(), conflicts, rate*100, conflictNs)

	out := struct {
		Experiment           string     `json:"experiment"`
		BigTableRows         int        `json:"big_table_rows"`
		Workers              int        `json:"workers"`
		Benchmarks           []benchOut `json:"benchmarks"`
		SeqScanSpeedup       float64    `json:"seq_scan_speedup"`
		GroupBySpeedup       float64    `json:"group_by_speedup"`
		HashJoinSpeedup      float64    `json:"hash_join_speedup"`
		WriterSpeedup        float64    `json:"uniform_writer_speedup_vs_global_lock"`
		PointWriterSpeedup   float64    `json:"point_writer_speedup_vs_global_lock"`
		PointWriterP99       float64    `json:"point_writer_p99_ns"`
		PointWriterP99Global float64    `json:"point_writer_p99_ns_global_lock"`
		PointWriterMax       float64    `json:"point_writer_max_ns"`
		PointWriterMaxGlobal float64    `json:"point_writer_max_ns_global_lock"`
		MaxConcurrentWriters int64      `json:"max_concurrent_writers"`
		ConflictRate         float64    `json:"conflict_rate"`
		Conflicts            int64      `json:"conflicts"`
		ConflictAttempts     int64      `json:"conflict_attempts"`
	}{
		Experiment:           "engine-parallel",
		BigTableRows:         bigRows,
		Workers:              workers,
		Benchmarks:           results,
		SeqScanSpeedup:       scanSeq / scanPar,
		GroupBySpeedup:       groupSeq / groupPar,
		HashJoinSpeedup:      joinSeq / joinPar,
		WriterSpeedup:        globalNs / shardedNs,
		PointWriterSpeedup:   mixedGlobal.mean / mixedSharded.mean,
		PointWriterP99:       mixedSharded.p99,
		PointWriterP99Global: mixedGlobal.p99,
		PointWriterMax:       mixedSharded.max,
		PointWriterMaxGlobal: mixedGlobal.max,
		MaxConcurrentWriters: shardedStats.MaxConcurrentWriters,
		ConflictRate:         rate,
		Conflicts:            conflicts,
		ConflictAttempts:     attempts.Load(),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_PR6.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_PR6.json")
	return nil
}
