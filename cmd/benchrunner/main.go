// Command benchrunner regenerates every table and figure from the paper's
// evaluation (§3) and prints them in the paper's layout.
//
// Usage:
//
//	benchrunner [-exp all|fig5a|fig5b|fig5c|fig6|table1|table2|ideal|ablations|engine|parallel|faults|stats] [-seed N] [-sample N]
//
// -sample runs every Nth task for a faster pass; the defaults reproduce the
// full benchmark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bridgescope/internal/experiments"
	"bridgescope/internal/sqldb"
	"bridgescope/internal/sqldb/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig5a, fig5b, fig5c, fig6, table1, table2, ideal, ablations, engine, parallel, faults, stats")
	seed := flag.Int64("seed", 42, "benchmark and behaviour seed")
	sample := flag.Int("sample", 1, "run every Nth task (1 = all)")
	rows := flag.Int("housing-rows", 0, "override NL2ML full-table size (0 = 20000)")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Sample: *sample, HousingRows: *rows}
	run := func(name string, fn func(experiments.Config) error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig5a", printFig5a)
	run("fig5b", printFig5b)
	run("fig5c", printFig5c)
	run("fig6", printFig6)
	run("table1", printTable1)
	run("table2", printTable2)
	run("ideal", printIdeal)
	run("ablations", printAblations)
	run("engine", func(experiments.Config) error { return printEngine() })
	run("parallel", func(experiments.Config) error { return printParallel() })
	run("faults", func(c experiments.Config) error { return printFaults(c.Seed) })
	run("stats", func(experiments.Config) error { return printStats() })
}

func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", len(title)))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

func printFig5a(cfg experiments.Config) error {
	header("Figure 5(a) — Context retrieval: average #LLM calls per task")
	res, err := experiments.Fig5a(cfg)
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("%-14s %-12s %6.2f calls (best achievable %.0f, %d tasks)\n",
			r.Model, r.Toolkit, r.AvgLLMCalls, r.BestAchievable, r.Tasks)
	}
	return nil
}

func printFig5b(cfg experiments.Config) error {
	header("Figure 5(b) — SQL execution: task accuracy")
	res, err := experiments.Fig5b(cfg)
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("%-14s %-12s accuracy %.3f (%d tasks)\n", r.Model, r.Toolkit, r.Accuracy, r.Tasks)
	}
	return nil
}

func printFig5c(cfg experiments.Config) error {
	header("Figure 5(c) — Transaction management: trigger ratio on write tasks")
	res, err := experiments.Fig5c(cfg)
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("%-14s %-12s trigger ratio %.3f (best achievable 1.0, %d tasks)\n",
			r.Model, r.Toolkit, r.TriggerRatio, r.Tasks)
	}
	return nil
}

func printFig6(cfg experiments.Config) error {
	header("Figure 6 — Average #LLM calls per (user, task type) cell")
	res, err := experiments.Fig6Table1(cfg)
	if err != nil {
		return err
	}
	fmt.Println("-- (a) feasible tasks --")
	for _, r := range res {
		if r.Cell.Feasible() {
			fmt.Printf("%-14s %-12s %-10s %6.2f calls (best %.0f)\n",
				r.Model, r.Toolkit, r.Cell, r.AvgLLMCalls, r.BestAchievable)
		}
	}
	fmt.Println("-- (b) infeasible tasks --")
	for _, r := range res {
		if !r.Cell.Feasible() {
			fmt.Printf("%-14s %-12s %-10s %6.2f calls (best %.0f)\n",
				r.Model, r.Toolkit, r.Cell, r.AvgLLMCalls, r.BestAchievable)
		}
	}
	return nil
}

func printTable1(cfg experiments.Config) error {
	header("Table 1 — Token usage for BIRD-Ext")
	res, err := experiments.Fig6Table1(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-12s | %-10s %-10s | %-10s %-10s %-10s\n",
		"Agent", "Toolkit", "(A,read)", "(A,write)", "(N,write)", "(I,read)", "(I,write)")
	type key struct {
		model string
		kind  experiments.ToolkitKind
	}
	rows := map[key]map[string]float64{}
	var order []key
	for _, r := range res {
		k := key{r.Model, r.Toolkit}
		if rows[k] == nil {
			rows[k] = map[string]float64{}
			order = append(order, k)
		}
		rows[k][r.Cell.String()] = r.AvgTokens
	}
	for _, k := range order {
		m := rows[k]
		fmt.Printf("%-14s %-12s | %-10.0f %-10.0f | %-10.0f %-10.0f %-10.0f\n",
			k.model, k.kind,
			m["(A, read)"], m["(A, write)"], m["(N, write)"], m["(I, read)"], m["(I, write)"])
	}
	return nil
}

func printTable2(cfg experiments.Config) error {
	header("Table 2 — Effectiveness of the proxy mechanism (NL2ML)")
	res, err := experiments.Table2(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-12s | %-16s %-18s %-12s\n", "Agent", "Toolkit", "Completion rate", "Tokens (avg)", "#LLM calls")
	for _, r := range res {
		tok, calls := "-", "-"
		if r.CompletionRate > 0 {
			tok = fmt.Sprintf("%.1f", r.AvgTokens)
			calls = fmt.Sprintf("%.2f", r.AvgLLMCalls)
		}
		fmt.Printf("%-14s %-12s | %-16.2f %-18s %-12s\n", r.Model, r.Toolkit, r.CompletionRate, tok, calls)
	}
	return nil
}

func printIdeal(cfg experiments.Config) error {
	header("§3.4(3) — Idealized-agent transfer lower bound vs BridgeScope")
	r, err := experiments.IdealizedTransfer(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("house table rendering:        %d tokens\n", r.TableTokens)
	fmt.Printf("idealized agent (2 transfers): >= %d tokens\n", r.IdealizedAgentTokens)
	fmt.Printf("BridgeScope measured average:  %.1f tokens\n", r.BridgeScopeTokens)
	fmt.Printf("ratio:                         %.0fx\n", r.Ratio)
	return nil
}

// printEngine measures the embedded engine's query path directly: full scan
// vs index scan (equality) vs index range scan (the ordered face), Top-K
// ORDER BY/LIMIT fusion, single-session vs parallel sessions (the shared
// read lock), the planned write path (UPDATE/DELETE access-path selection),
// the plan cache, and — new with the durability subsystem — commit
// throughput across WAL sync modes (group commit vs fsync-per-commit vs
// no-fsync vs in-memory). `go test -bench . ./internal/sqldb` runs the full
// suite. Results are also written to BENCH_PR4.json so the perf trajectory
// is recorded per run.
func printEngine() error {
	header("Engine — access paths, ordered indexes, Top-K, plan cache")

	setup := func(rows int, withIndex bool) (*sqldb.Engine, *sqldb.Session) {
		e := sqldb.NewEngine("bench")
		s := e.NewSession("root")
		s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, grp INT, val REAL)`)
		if withIndex {
			s.MustExec(`CREATE INDEX idx_grp ON t (grp)`)
		}
		for i := 0; i < rows; i += 500 {
			batch := ""
			for j := i; j < i+500 && j < rows; j++ {
				if batch != "" {
					batch += ", "
				}
				batch += fmt.Sprintf("(%d, %d, %f)", j, j%50, float64(j))
			}
			s.MustExec("INSERT INTO t VALUES " + batch)
		}
		return e, s
	}
	const rows = 5000
	const writeRows = 10000
	const query = "SELECT COUNT(*) FROM t WHERE grp = 7"
	const rangeQuery = "SELECT COUNT(*) FROM t WHERE grp BETWEEN 3 AND 7"
	const topkQuery = "SELECT id, val FROM t ORDER BY id DESC LIMIT 10"
	const orderedQuery = "SELECT id FROM t ORDER BY grp"

	type benchOut struct {
		Name    string  `json:"name"`
		Ops     int     `json:"ops"`
		NsPerOp float64 `json:"ns_per_op"`
	}
	var results []benchOut
	report := func(name string, r testing.BenchmarkResult) {
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		fmt.Printf("%-28s %10d ops %12.0f ns/op\n", name, r.N, ns)
		results = append(results, benchOut{Name: name, Ops: r.N, NsPerOp: ns})
	}

	_, scan := setup(rows, false)
	report("SelectFullScan", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scan.MustExec(query)
		}
	}))

	eIdx, idx := setup(rows, true)
	report("SelectIndexed", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.MustExec(query)
		}
	}))

	report("ParallelSelect", testing.Benchmark(func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			s := eIdx.NewSession("root")
			for pb.Next() {
				s.MustExec(query)
			}
		})
	}))

	// Range predicates on a 10k-row table: the unindexed baseline walks
	// every row, the ordered index visits only the in-range ones. The >=10x
	// gap is PR 3's acceptance criterion.
	_, rscan := setup(writeRows, false)
	report("SelectRangeScan", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rscan.MustExec(rangeQuery)
		}
	}))
	eRange, ridx := setup(writeRows, true)
	report("SelectRangeIndexed", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ridx.MustExec(rangeQuery)
		}
	}))

	// ORDER BY/LIMIT: Top-K fuses the sort and the limit into the ordered
	// scan (10 rows visited on the 10k-row table); the ordered full scan
	// skips only the sort stage.
	report("TopKLimit", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ridx.MustExec(topkQuery)
		}
	}))
	report("OrderByIndexed", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ridx.MustExec(orderedQuery)
		}
	}))

	// Rows visited by the read path, per query shape.
	scanBefore := eRange.ScanRowsVisited()
	ridx.MustExec(rangeQuery)
	rangeVisited := eRange.ScanRowsVisited() - scanBefore
	scanBefore = eRange.ScanRowsVisited()
	ridx.MustExec(topkQuery)
	topkVisited := eRange.ScanRowsVisited() - scanBefore
	fmt.Printf("\nrows visited on the %d-row table: BETWEEN via ordered index %d, ORDER BY ... LIMIT 10 via Top-K %d\n",
		writeRows, rangeVisited, topkVisited)

	// Write path: planned UPDATE/DELETE. A PK point update touches one row;
	// the non-indexed predicate falls back to the full scan, so the rows-
	// visited gap below is the planner's doing.
	eW, w := setup(writeRows, true)
	report("UpdateByPK", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.MustExec(fmt.Sprintf("UPDATE t SET val = val + 1 WHERE id = %d", i%writeRows))
		}
	}))
	report("DeleteIndexed", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 77, 0.0)", writeRows+i))
			w.MustExec("DELETE FROM t WHERE grp = 77")
		}
	}))

	before := eW.DMLRowsVisited()
	w.MustExec("UPDATE t SET val = val + 1 WHERE id = 5")
	pkVisited := eW.DMLRowsVisited() - before
	before = eW.DMLRowsVisited()
	w.MustExec("UPDATE t SET val = val + 1 WHERE val < -1000000")
	fullVisited := eW.DMLRowsVisited() - before
	fmt.Printf("\nrows visited per UPDATE on a %d-row table: by PK %d, non-indexed %d (%.0fx reduction)\n",
		writeRows, pkVisited, fullVisited, float64(fullVisited)/float64(pkVisited))

	// Plan cache: a fixed statement is served from the cache after its first
	// execution; varying the SQL text defeats the cache and re-plans.
	const hot = "SELECT val FROM t WHERE id = 42"
	w.MustExec(hot)
	report("PlanCacheHit", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.MustExec(hot)
		}
	}))
	report("PlanCacheCold", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.MustExec(fmt.Sprintf("SELECT val FROM t WHERE id = %d", i%writeRows))
		}
	}))
	hits, misses := eW.PlanCacheStats()

	plan, err := eIdx.NewSession("root").Plan(query)
	if err != nil {
		return err
	}
	fmt.Println("\nchosen plan for the indexed query:")
	fmt.Println(plan.Explain())

	rplan, err := eRange.NewSession("root").Plan(rangeQuery)
	if err != nil {
		return err
	}
	fmt.Println("\nchosen plan for the range query (bounds act as the index condition):")
	fmt.Println(rplan.Explain())

	tplan, err := eRange.NewSession("root").Plan(topkQuery)
	if err != nil {
		return err
	}
	fmt.Println("\nchosen plan for the Top-K query (sort and limit fused into the scan):")
	fmt.Println(tplan.Explain())

	upd, err := eW.NewSession("root").Plan("UPDATE t SET val = 0 WHERE id = 5")
	if err != nil {
		return err
	}
	fmt.Println("\nchosen plan for the PK update (the executor runs this exact access path):")
	fmt.Println(upd.Explain())

	// Durability: commit throughput per WAL sync mode. "always" is the
	// single-fsync-per-commit baseline; "batch" is group commit under 16
	// concurrent committers (each still waits for its group's fsync before
	// the statement is acknowledged); "off" leaves flushing to the OS;
	// "memory" is the WAL-free engine for reference.
	fmt.Println()
	header("Engine — durable commit throughput (WAL sync modes)")
	openDurable := func(mode sqldb.SyncMode) (*sqldb.Engine, func(), error) {
		dir, err := os.MkdirTemp("", "benchwal-*")
		if err != nil {
			return nil, nil, err
		}
		e, err := sqldb.OpenEngine(dir, sqldb.Options{Sync: mode, CheckpointEvery: -1})
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		e.NewSession("root").MustExec(`CREATE TABLE t (id INT PRIMARY KEY, val REAL)`)
		return e, func() { e.Close(); os.RemoveAll(dir) }, nil
	}

	var alwaysNs, batchNs float64
	commitSeq := func(name string, mode sqldb.SyncMode) error {
		e, cleanup, err := openDurable(mode)
		if err != nil {
			return err
		}
		defer cleanup()
		s := e.NewSession("root")
		var id atomic.Int64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1.0)", id.Add(1)))
			}
		})
		report(name, r)
		if mode == sqldb.SyncAlways {
			alwaysNs = results[len(results)-1].NsPerOp
		}
		return nil
	}
	if err := commitSeq("CommitDurableAlways", sqldb.SyncAlways); err != nil {
		return err
	}

	// Group commit: 16 committing goroutines regardless of GOMAXPROCS.
	eBatch, cleanupBatch, err := openDurable(sqldb.SyncBatch)
	if err != nil {
		return err
	}
	var batchID atomic.Int64
	rBatch := testing.Benchmark(func(b *testing.B) {
		// ~16 goroutines regardless of GOMAXPROCS (RunParallel spawns
		// p*GOMAXPROCS workers).
		b.SetParallelism(max(1, (16+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
		b.RunParallel(func(pb *testing.PB) {
			s := eBatch.NewSession("root")
			for pb.Next() {
				s.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1.0)", batchID.Add(1)))
			}
		})
	})
	report("CommitDurableBatch16", rBatch)
	batchNs = results[len(results)-1].NsPerOp
	batchStats := eBatch.Durability()
	cleanupBatch()

	if err := commitSeq("CommitDurableOff", sqldb.SyncOff); err != nil {
		return err
	}
	eMem := sqldb.NewEngine("mem")
	sMem := eMem.NewSession("root")
	sMem.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, val REAL)`)
	var memID atomic.Int64
	report("CommitMemory", testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sMem.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1.0)", memID.Add(1)))
		}
	}))

	speedup := alwaysNs / batchNs
	groupSize := 0.0
	if batchStats.GroupFlushes > 0 {
		groupSize = float64(batchStats.Commits) / float64(batchStats.GroupFlushes)
	}
	fmt.Printf("\ngroup commit: %.1fx the throughput of fsync-per-commit (%.1f commits per fsync, %d commits / %d fsyncs)\n",
		speedup, groupSize, batchStats.Commits, batchStats.Fsyncs)

	out := struct {
		Experiment            string     `json:"experiment"`
		WriteTableRows        int        `json:"write_table_rows"`
		Benchmarks            []benchOut `json:"benchmarks"`
		RangeScanRowsVisited  int64      `json:"range_scan_rows_visited"`
		TopKRowsVisited       int64      `json:"topk_rows_visited"`
		UpdateByPKRowsVisited int64      `json:"update_by_pk_rows_visited"`
		FullScanRowsVisited   int64      `json:"full_scan_update_rows_visited"`
		PlanCacheHits         int64      `json:"plan_cache_hits"`
		PlanCacheMisses       int64      `json:"plan_cache_misses"`
		GroupCommitSpeedup    float64    `json:"group_commit_speedup_vs_always"`
		GroupCommitBatchSize  float64    `json:"group_commit_avg_batch_size"`
		GroupCommitCommits    int64      `json:"group_commit_commits"`
		GroupCommitFsyncs     int64      `json:"group_commit_fsyncs"`
	}{
		Experiment:            "engine",
		WriteTableRows:        writeRows,
		Benchmarks:            results,
		RangeScanRowsVisited:  rangeVisited,
		TopKRowsVisited:       topkVisited,
		UpdateByPKRowsVisited: pkVisited,
		FullScanRowsVisited:   fullVisited,
		PlanCacheHits:         hits,
		PlanCacheMisses:       misses,
		GroupCommitSpeedup:    speedup,
		GroupCommitBatchSize:  groupSize,
		GroupCommitCommits:    batchStats.Commits,
		GroupCommitFsyncs:     batchStats.Fsyncs,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_PR4.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_PR4.json")
	return printEngineMVCC()
}

// printEngineMVCC measures the MVCC concurrency properties added with
// snapshot isolation: reader throughput while a writer continuously commits
// full-table UPDATEs (before MVCC readers serialized behind the exclusive
// per-statement lock; now writers take it only per version installed), the
// writer's own statement cost for scale, and the write-write conflict
// retry loop (first-committer-wins) with its conflict rate. Results land in
// BENCH_PR5.json.
func printEngineMVCC() error {
	header("Engine — MVCC: non-blocking readers + write-conflict rate")

	const rows = 5000
	e := sqldb.NewEngine("mvcc")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, grp INT, val REAL)`)
	s.MustExec(`CREATE INDEX idx_grp ON t (grp)`)
	for i := 0; i < rows; i += 500 {
		batch := ""
		for j := i; j < i+500 && j < rows; j++ {
			if batch != "" {
				batch += ", "
			}
			batch += fmt.Sprintf("(%d, %d, %f)", j, j%50, float64(j))
		}
		s.MustExec("INSERT INTO t VALUES " + batch)
	}

	type benchOut struct {
		Name    string  `json:"name"`
		Ops     int     `json:"ops"`
		NsPerOp float64 `json:"ns_per_op"`
	}
	var results []benchOut
	report := func(name string, r testing.BenchmarkResult) float64 {
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		fmt.Printf("%-28s %10d ops %12.0f ns/op\n", name, r.N, ns)
		results = append(results, benchOut{Name: name, Ops: r.N, NsPerOp: ns})
		return ns
	}

	const readQuery = "SELECT COUNT(*) FROM t WHERE grp = 7"
	parallelRead := func() testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				rs := e.NewSession("root")
				for pb.Next() {
					rs.MustExec(readQuery)
				}
			})
		})
	}

	readerOnlyNs := report("ReadersNoWriter", parallelRead())

	// The writer's full-table UPDATE for scale: before MVCC this entire
	// duration blocked every reader, per statement.
	writerNs := report("WriterFullTableUpdate", testing.Benchmark(func(b *testing.B) {
		w := e.NewSession("root")
		for i := 0; i < b.N; i++ {
			w.MustExec("UPDATE t SET val = val + 1 WHERE grp >= 0")
		}
	}))

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := e.NewSession("root")
		for {
			select {
			case <-stop:
				return
			default:
				w.MustExec("UPDATE t SET val = val + 1 WHERE grp >= 0")
			}
		}
	}()
	readerUnderWriterNs := report("ReadersWithWriter", parallelRead())
	close(stop)
	<-done

	slowdown := readerUnderWriterNs / readerOnlyNs
	fmt.Printf("\nreader slowdown under a continuous full-table writer: %.2fx (writer statement itself: %.1fms — the old exclusive-lock stall per statement)\n",
		slowdown, writerNs/1e6)

	// Write-write conflicts: concurrent increments of one row with the
	// documented ROLLBACK-and-retry loop.
	ec := sqldb.NewEngine("conflict")
	sc := ec.NewSession("root")
	sc.MustExec(`CREATE TABLE c (id INT PRIMARY KEY, n INT)`)
	sc.MustExec(`INSERT INTO c VALUES (1, 0)`)
	var attempts atomic.Int64
	conflictNs := report("ConflictRetryIncrement", testing.Benchmark(func(b *testing.B) {
		b.SetParallelism(max(1, (4+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
		b.RunParallel(func(pb *testing.PB) {
			w := ec.NewSession("root")
			for pb.Next() {
				for {
					ok := true
					attempts.Add(1)
					for _, q := range []string{"BEGIN", "UPDATE c SET n = n + 1 WHERE id = 1", "COMMIT"} {
						if _, err := w.Exec(q); err != nil {
							if !sqldb.IsRetryable(err) {
								b.Fatalf("%s: %v", q, err)
							}
							w.MustExec("ROLLBACK")
							ok = false
							break
						}
					}
					if ok {
						break
					}
				}
			}
		})
	}))
	conflicts := ec.WriteConflicts()
	rate := 0.0
	if a := attempts.Load(); a > 0 {
		rate = float64(conflicts) / float64(a)
	}
	fmt.Printf("\nconflict rate on a single hot row: %.1f%% of attempts aborted retryably (%d conflicts, %.0f ns per committed increment)\n",
		rate*100, conflicts, conflictNs)

	out := struct {
		Experiment        string     `json:"experiment"`
		TableRows         int        `json:"table_rows"`
		Benchmarks        []benchOut `json:"benchmarks"`
		ReaderSlowdown    float64    `json:"reader_slowdown_under_writer"`
		WriterStatementNs float64    `json:"writer_statement_ns"`
		ConflictRate      float64    `json:"conflict_rate"`
		Conflicts         int64      `json:"conflicts"`
		ConflictAttempts  int64      `json:"conflict_attempts"`
	}{
		Experiment:        "engine-mvcc",
		TableRows:         rows,
		Benchmarks:        results,
		ReaderSlowdown:    slowdown,
		WriterStatementNs: writerNs,
		ConflictRate:      rate,
		Conflicts:         conflicts,
		ConflictAttempts:  attempts.Load(),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_PR5.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_PR5.json")
	return nil
}

// printStats measures the observability layer's cost on the engine's three
// hottest paths — sequential scan, group-committed durable inserts, and
// plan-cache hits — each benchmarked with metric recording on (the default)
// and off (stats.SetEnabled(false)). Every histogram Observe is a couple of
// atomic adds, so the budget is tight: the PR 9 acceptance criterion is
// <=3% overhead per path. Each configuration takes the best of three runs
// to keep scheduler noise out of the comparison. Results land in
// BENCH_PR9.json.
func printStats() error {
	header("Engine — metrics overhead (recording enabled vs disabled)")
	defer stats.SetEnabled(true)

	type statsBench struct {
		Name        string  `json:"name"`
		EnabledNs   float64 `json:"enabled_ns_per_op"`
		DisabledNs  float64 `json:"disabled_ns_per_op"`
		OverheadPct float64 `json:"overhead_pct"`
	}
	var results []statsBench

	// The recording cost per operation is a few atomic adds — far below the
	// run-to-run variance of whole testing.Benchmark invocations on a shared
	// machine. So each bench runs as many short enabled/disabled block
	// *pairs*, adjacent in time and alternating which goes first, and the
	// reported overhead is the median of the pairwise ratios: pairing
	// cancels slow drift (thermal, background load, growing benchmark
	// state), alternation cancels within-pair order bias, and the median
	// shrugs off preemption and GC outliers.
	median := func(xs []float64) float64 {
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}
	measure := func(name string, pairs, opsPerBlock int, block func(n int)) {
		block(opsPerBlock) // warm-up
		var onNs, offNs, ratios []float64
		for p := 0; p < pairs; p++ {
			var on, off float64
			for half := 0; half < 2; half++ {
				enabled := (p+half)%2 == 0
				stats.SetEnabled(enabled)
				start := time.Now()
				block(opsPerBlock)
				ns := float64(time.Since(start).Nanoseconds()) / float64(opsPerBlock)
				if enabled {
					on = ns
				} else {
					off = ns
				}
			}
			onNs = append(onNs, on)
			offNs = append(offNs, off)
			ratios = append(ratios, on/off)
		}
		stats.SetEnabled(true)
		on, off := median(onNs), median(offNs)
		pct := (median(ratios) - 1) * 100
		fmt.Printf("%-24s enabled %10.0f ns/op   disabled %10.0f ns/op   overhead %+.1f%%\n",
			name, on, off, pct)
		results = append(results, statsBench{Name: name, EnabledNs: on, DisabledNs: off, OverheadPct: pct})
	}

	// Sequential scan: the per-row hot loop plus one statement-latency
	// observation at the end.
	const rows = 5000
	e := sqldb.NewEngine("statsbench")
	s := e.NewSession("root")
	s.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, grp INT, val REAL)`)
	for i := 0; i < rows; i += 500 {
		batch := ""
		for j := i; j < i+500 && j < rows; j++ {
			if batch != "" {
				batch += ", "
			}
			batch += fmt.Sprintf("(%d, %d, %f)", j, j%50, float64(j))
		}
		s.MustExec("INSERT INTO t VALUES " + batch)
	}
	measure("SeqScan", 300, 8, func(n int) {
		for i := 0; i < n; i++ {
			s.MustExec("SELECT COUNT(*) FROM t WHERE grp = 7")
		}
	})

	// Plan-cache hit: the shortest full statement path — the latency
	// observation is the largest relative cost here.
	const hot = "SELECT val FROM t WHERE id = 42"
	s.MustExec(hot)
	measure("PlanCacheHit", 400, 2000, func(n int) {
		for i := 0; i < n; i++ {
			s.MustExec(hot)
		}
	})

	// Group-committed durable inserts: adds the WAL append/fsync/batch-size
	// observations inside the flusher.
	dir, err := os.MkdirTemp("", "statsbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	eD, err := sqldb.OpenEngine(dir, sqldb.Options{Sync: sqldb.SyncBatch, CheckpointEvery: -1})
	if err != nil {
		return err
	}
	defer eD.Close()
	eD.NewSession("root").MustExec(`CREATE TABLE t (id INT PRIMARY KEY, val REAL)`)
	var id atomic.Int64
	const committers = 16
	sessions := make([]*sqldb.Session, committers)
	for i := range sessions {
		sessions[i] = eD.NewSession("root")
	}
	measure("CommitDurableBatch16", 300, 1024, func(n int) {
		var wg sync.WaitGroup
		per := n / committers
		for g := 0; g < committers; g++ {
			wg.Add(1)
			go func(sd *sqldb.Session) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					sd.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, 1.0)", id.Add(1)))
				}
			}(sessions[g])
		}
		wg.Wait()
	})

	out := struct {
		Experiment string       `json:"experiment"`
		Budget     float64      `json:"overhead_budget_pct"`
		Benchmarks []statsBench `json:"benchmarks"`
	}{Experiment: "stats-overhead", Budget: 3.0, Benchmarks: results}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_PR9.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote BENCH_PR9.json")
	return nil
}

func printAblations(cfg experiments.Config) error {
	header("Ablations — BridgeScope design choices")
	res, err := experiments.Ablations(cfg)
	if err != nil {
		return err
	}
	for _, r := range res {
		fmt.Printf("%-34s %10.3f %-8s (baseline %.3f, %s)\n", r.Name, r.Value, r.Unit, r.Baseline, r.Note)
	}
	return nil
}
