// Command bridgescope-demo runs a simulated agent against the BIRD-Ext
// database with a full step-by-step trace: every LLM decision, tool call,
// and observation, under a chosen toolkit and role. It is the quickest way
// to watch BridgeScope's privilege-aware behaviour differ from the PG-MCP
// baseline.
//
// Usage:
//
//	bridgescope-demo [-toolkit bridgescope|pgmcp] [-role admin|normal|irrelevant] [-task read-001] [-model gpt|claude]
//	bridgescope-demo -list            # list available task ids
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"bridgescope/internal/agent"
	"bridgescope/internal/bench/birdext"
	"bridgescope/internal/core"
	"bridgescope/internal/llm"
	"bridgescope/internal/mcp"
	"bridgescope/internal/pgmcp"
	"bridgescope/internal/task"
)

func main() {
	toolkitName := flag.String("toolkit", "bridgescope", "bridgescope or pgmcp")
	roleName := flag.String("role", "admin", "admin, normal, or irrelevant")
	taskID := flag.String("task", "insert-006", "task id (see -list)")
	modelName := flag.String("model", "claude", "gpt or claude")
	seed := flag.Int64("seed", 42, "benchmark seed")
	list := flag.Bool("list", false, "list task ids and exit")
	flag.Parse()

	suite := birdext.GenerateSuite(*seed)
	if *list {
		for _, t := range suite.Tasks {
			fmt.Printf("%-12s %s\n", t.ID, t.NL)
		}
		return
	}
	var chosen *task.Task
	for _, t := range suite.Tasks {
		if t.ID == *taskID {
			chosen = t
			break
		}
	}
	if chosen == nil {
		fmt.Fprintf(os.Stderr, "unknown task %q (use -list)\n", *taskID)
		os.Exit(1)
	}

	role := map[string]birdext.Role{
		"admin": birdext.RoleAdmin, "normal": birdext.RoleNormal, "irrelevant": birdext.RoleIrrelevant,
	}[*roleName]
	if role == "" {
		fmt.Fprintln(os.Stderr, "role must be admin, normal, or irrelevant")
		os.Exit(1)
	}
	profile := llm.Claude4()
	if *modelName == "gpt" {
		profile = llm.GPT4o()
	}
	model := llm.NewSim(profile, *seed)

	engine := suite.BuildEngine()
	user := birdext.SetupRole(engine, role)
	conn := core.NewSQLDBConn(engine, user)

	var client *mcp.Client
	var prompt string
	switch *toolkitName {
	case "bridgescope":
		tk := core.New(conn, core.Policy{})
		client = tk.Client()
		prompt = tk.SystemPrompt()
	case "pgmcp":
		tk := pgmcp.New(conn, pgmcp.Options{WithSchemaTool: true})
		client = mcp.NewClient(mcp.NewServer(tk.Registry()))
		prompt = tk.SystemPrompt()
	default:
		fmt.Fprintln(os.Stderr, "toolkit must be bridgescope or pgmcp")
		os.Exit(1)
	}

	fmt.Printf("task:    %s — %s\n", chosen.ID, chosen.NL)
	fmt.Printf("model:   %s | toolkit: %s | role: %s (user %s)\n\n",
		model.Name(), *toolkitName, role, user)

	a := &agent.Agent{Model: model, Client: &tracingClient{client}, SystemPrompt: prompt}
	met, err := a.Run(context.Background(), chosen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}

	fmt.Println("\n=== outcome ===")
	switch {
	case met.Completed:
		fmt.Println("completed:", firstLines(met.FinalAnswer, 3))
	case met.Aborted:
		fmt.Println("aborted:", met.AbortReason)
	case met.ContextExhausted:
		fmt.Println("failed: context window exhausted")
	default:
		fmt.Println("did not finish")
	}
	fmt.Printf("LLM calls: %d | tool calls: %d | tokens: %d | transaction used: %v\n",
		met.LLMCalls, met.ToolCalls, met.TotalTokens(), met.TransactionUsed)
}

// tracingClient wraps the MCP client to print each call and observation.
// It reuses the agent's client interface by embedding.
type tracingClient struct {
	*mcp.Client
}

// CallTool traces the call before delegating.
func (c *tracingClient) CallTool(ctx context.Context, name string, args map[string]any) (mcp.CallResult, error) {
	argText := ""
	if sql, ok := args["sql"].(string); ok {
		argText = " " + sql
	} else if obj, ok := args["object"].(string); ok {
		argText = " " + obj
	} else if len(args) > 0 {
		argText = fmt.Sprintf(" %v", args)
	}
	fmt.Printf(">> %s%s\n", name, argText)
	res, err := c.Client.CallTool(ctx, name, args)
	if err != nil {
		fmt.Printf("   !! %v\n", err)
		return res, err
	}
	fmt.Printf("   %s\n", firstLines(res.Text, 4))
	return res, nil
}

func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) <= n {
		return s
	}
	return strings.Join(lines[:n], "\n") + fmt.Sprintf("\n   ... (%d more lines)", len(lines)-n)
}
