// Command sqlvet runs the engine's invariant analyzers. Two modes:
//
// Standalone (package patterns as arguments):
//
//	go run ./cmd/sqlvet ./...
//
// Vettool (driven by the go command, which passes a .cfg file per package):
//
//	go build -o sqlvet ./cmd/sqlvet
//	go vet -vettool=$(pwd)/sqlvet ./...
//
// In vettool mode the go command invokes the binary once per package in
// dependency order, handing it a JSON config naming the package's files,
// its dependencies' export data, and the .vetx fact files of its analyzed
// dependencies; the binary type-checks the package from source, runs the
// analyzers, writes its own facts, and reports diagnostics on stderr with
// exit status 2 — the protocol of golang.org/x/tools unitchecker,
// reimplemented here because the build environment is offline.
package main

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"bridgescope/internal/analysis/framework"
	"bridgescope/internal/analysis/load"
	"bridgescope/internal/analysis/sqlvet"
)

func main() {
	args := os.Args[1:]

	// Protocol probes from cmd/go.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			// cmd/go content-hashes the tool so vet results cache correctly
			// across rebuilds of the checker.
			fmt.Printf("%s version devel buildID=%s\n", os.Args[0], selfHash())
			return
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}

	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sqlvet <packages>  (or: go vet -vettool=sqlvet <packages>)")
		os.Exit(1)
	}

	findings, err := sqlvet.Check(".", args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlvet:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
}

// selfHash content-hashes the executable for the -V=full reply.
func selfHash() string {
	f, err := os.Open(os.Args[0])
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// vetConfig is the JSON the go command writes for each package (the
// unitchecker Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	ModulePath                string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sqlvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	facts := framework.NewFactStore()

	// The go command also schedules the tool over standard-library
	// dependencies to produce their .vetx files. The invariants under check
	// are specific to this module, so for anything outside it we skip
	// analysis and publish empty facts. (Matching on ModulePath, not the
	// Standard map: a std package's own config lists only its dependencies
	// there, not itself.)
	analyze := cfg.ModulePath != "" && !cfg.Standard[cfg.ImportPath]

	var diags []framework.Diagnostic
	fset := token.NewFileSet()
	if analyze {
		var files []*ast.File
		for _, name := range cfg.GoFiles {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				if cfg.SucceedOnTypecheckFailure {
					return writeVetx(&cfg, facts)
				}
				fmt.Fprintln(os.Stderr, "sqlvet:", err)
				return 1
			}
			files = append(files, f)
		}

		imp := load.ExportImporter(fset, cfg.ImportMap, func(path string) (string, bool) {
			f, ok := cfg.PackageFile[path]
			return f, ok
		})
		info := load.NewInfo()
		tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
		pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(&cfg, facts)
			}
			fmt.Fprintf(os.Stderr, "sqlvet: type-checking %s: %v\n", cfg.ImportPath, err)
			return 1
		}

		// Merge the fact files of analyzed dependencies.
		for _, vetx := range cfg.PackageVetx {
			if err := readVetx(vetx, facts); err != nil {
				fmt.Fprintln(os.Stderr, "sqlvet:", err)
				return 1
			}
		}

		diags, err = sqlvet.RunPackage(fset, files, pkg, info, facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlvet:", err)
			return 1
		}
	}

	if code := writeVetx(&cfg, facts); code != 0 {
		return code
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return 2
}

func readVetx(path string, facts *framework.FactStore) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	if err := facts.Decode(dec); err != nil && err != io.EOF {
		return fmt.Errorf("reading facts from %s: %w", path, err)
	}
	return nil
}

func writeVetx(cfg *vetConfig, facts *framework.FactStore) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	f, err := os.Create(cfg.VetxOutput)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlvet:", err)
		return 1
	}
	defer f.Close()
	enc := gob.NewEncoder(f)
	if err := facts.Encode(enc, cfg.ImportPath); err != nil {
		fmt.Fprintf(os.Stderr, "sqlvet: writing facts: %v\n", err)
		return 1
	}
	return 0
}
