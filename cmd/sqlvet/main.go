// Command sqlvet runs the engine's invariant analyzers. Two modes:
//
// Standalone (package patterns as arguments):
//
//	go run ./cmd/sqlvet ./...
//	go run ./cmd/sqlvet -sarif ./... > sqlvet.sarif
//	go run ./cmd/sqlvet -baseline .sqlvet-baseline.json -fail-stale ./...
//
// Standalone flags: -json and -sarif write machine-readable reports (JSON
// array / SARIF 2.1.0) to stdout instead of the plain stderr lines;
// -baseline suppresses findings listed in the named file (matched by
// analyzer+file+message, line-independent) while new ones still fail;
// -fail-stale additionally fails if the baseline lists findings that no
// longer occur; -write-baseline rewrites the baseline to accept the current
// findings. Exit codes: 0 = clean, 1 = findings (or stale baseline under
// -fail-stale), 2 = the analysis itself failed (load/type-check/analyzer
// error) — so CI can distinguish "code has violations" from "tool broke".
//
// Vettool (driven by the go command, which passes a .cfg file per package):
//
//	go build -o sqlvet ./cmd/sqlvet
//	go vet -vettool=$(pwd)/sqlvet ./...
//
// In vettool mode the go command invokes the binary once per package in
// dependency order, handing it a JSON config naming the package's files,
// its dependencies' export data, and the .vetx fact files of its analyzed
// dependencies; the binary type-checks the package from source, runs the
// analyzers, writes its own facts, and reports diagnostics on stderr with
// exit status 2 — the protocol of golang.org/x/tools unitchecker,
// reimplemented here because the build environment is offline. (The vettool
// exit codes are the protocol's, not the standalone contract above.)
package main

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"bridgescope/internal/analysis/framework"
	"bridgescope/internal/analysis/load"
	"bridgescope/internal/analysis/sqlvet"
)

func main() {
	args := os.Args[1:]

	// Protocol probes from cmd/go.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			// cmd/go content-hashes the tool so vet results cache correctly
			// across rebuilds of the checker.
			fmt.Printf("%s version devel buildID=%s\n", os.Args[0], selfHash())
			return
		case a == "-flags" || a == "--flags":
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}

	os.Exit(standalone(args))
}

// standalone runs the suite over package patterns with the documented exit
// codes: 0 clean, 1 findings, 2 analysis failure.
func standalone(args []string) int {
	fs := flag.NewFlagSet("sqlvet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: sqlvet [flags] <packages>  (or: go vet -vettool=sqlvet <packages>)")
		fs.PrintDefaults()
	}
	var (
		jsonOut       = fs.Bool("json", false, "write findings to stdout as a JSON array")
		sarifOut      = fs.Bool("sarif", false, "write findings to stdout as SARIF 2.1.0")
		baselinePath  = fs.String("baseline", "", "baseline `file`; listed findings are accepted, new ones fail")
		failStale     = fs.Bool("fail-stale", false, "fail if the baseline lists findings that no longer occur")
		writeBaseline = fs.Bool("write-baseline", false, "rewrite the -baseline file to accept current findings")
	)
	fs.Parse(os.Args[1:])
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "sqlvet: -write-baseline requires -baseline")
		return 2
	}

	findings, err := sqlvet.Check(".", fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlvet:", err)
		return 2
	}
	root, _ := os.Getwd()

	if *writeBaseline {
		if err := sqlvet.WriteBaselineFile(*baselinePath, root, findings); err != nil {
			fmt.Fprintln(os.Stderr, "sqlvet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "sqlvet: wrote %s (%d findings accepted)\n", *baselinePath, len(findings))
		return 0
	}

	var stale []sqlvet.BaselineEntry
	if *baselinePath != "" {
		b, err := sqlvet.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlvet:", err)
			return 2
		}
		findings, stale = b.Apply(root, findings)
	}

	switch {
	case *jsonOut:
		if err := sqlvet.WriteJSON(os.Stdout, root, findings); err != nil {
			fmt.Fprintln(os.Stderr, "sqlvet:", err)
			return 2
		}
	case *sarifOut:
		if err := sqlvet.WriteSARIF(os.Stdout, root, findings); err != nil {
			fmt.Fprintln(os.Stderr, "sqlvet:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "sqlvet: stale baseline entry (fixed but still listed): %s: %s: %s\n",
			e.File, e.Analyzer, e.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	if *failStale && len(stale) > 0 {
		return 1
	}
	return 0
}

// selfHash content-hashes the executable for the -V=full reply.
func selfHash() string {
	f, err := os.Open(os.Args[0])
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// vetConfig is the JSON the go command writes for each package (the
// unitchecker Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	ModulePath                string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sqlvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	facts := framework.NewFactStore()

	// The go command also schedules the tool over standard-library
	// dependencies to produce their .vetx files. The invariants under check
	// are specific to this module, so for anything outside it we skip
	// analysis and publish empty facts. (Matching on ModulePath, not the
	// Standard map: a std package's own config lists only its dependencies
	// there, not itself.)
	analyze := cfg.ModulePath != "" && !cfg.Standard[cfg.ImportPath]

	var diags []framework.Diagnostic
	fset := token.NewFileSet()
	if analyze {
		var files []*ast.File
		for _, name := range cfg.GoFiles {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
			if err != nil {
				if cfg.SucceedOnTypecheckFailure {
					return writeVetx(&cfg, facts)
				}
				fmt.Fprintln(os.Stderr, "sqlvet:", err)
				return 1
			}
			files = append(files, f)
		}

		imp := load.ExportImporter(fset, cfg.ImportMap, func(path string) (string, bool) {
			f, ok := cfg.PackageFile[path]
			return f, ok
		})
		info := load.NewInfo()
		tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
		pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(&cfg, facts)
			}
			fmt.Fprintf(os.Stderr, "sqlvet: type-checking %s: %v\n", cfg.ImportPath, err)
			return 1
		}

		// Merge the fact files of analyzed dependencies.
		for _, vetx := range cfg.PackageVetx {
			if err := readVetx(vetx, facts); err != nil {
				fmt.Fprintln(os.Stderr, "sqlvet:", err)
				return 1
			}
		}

		diags, err = sqlvet.RunPackage(fset, files, pkg, info, facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sqlvet:", err)
			return 1
		}
	}

	if code := writeVetx(&cfg, facts); code != 0 {
		return code
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return 2
}

func readVetx(path string, facts *framework.FactStore) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	if err := facts.Decode(dec); err != nil && err != io.EOF {
		return fmt.Errorf("reading facts from %s: %w", path, err)
	}
	return nil
}

func writeVetx(cfg *vetConfig, facts *framework.FactStore) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	f, err := os.Create(cfg.VetxOutput)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sqlvet:", err)
		return 1
	}
	defer f.Close()
	enc := gob.NewEncoder(f)
	if err := facts.Encode(enc, cfg.ImportPath); err != nil {
		fmt.Fprintf(os.Stderr, "sqlvet: writing facts: %v\n", err)
		return 1
	}
	return 0
}
