// Command sqlshell is an interactive shell over the embedded sqldb engine.
// By default it starts with the BIRD-Ext benchmark database loaded in
// memory and a superuser session; with -data it opens (or creates) a
// persistent database instead — every committed statement is written to a
// write-ahead log under the directory and the full state survives restarts.
// Use \user to switch identities and exercise the privilege system.
//
// Usage:
//
//	sqlshell [-seed N] [-data DIR] [-sync off|batch|always] [-metrics ADDR]
//
// With -metrics, an HTTP listener serves the engine's stats as Prometheus
// text exposition at /metrics and as JSON at /stats.json.
//
// Meta commands:
//
//	\d              list tables
//	\d <table>      show a table's DDL
//	\user <name>    switch the session user
//	\grant <user> <action> <table>   grant a privilege (superuser)
//	\cache          show plan-cache hit/miss/eviction counters and size
//	\stats          show the engine-wide metrics snapshot
//	\slowlog [ms]   show slow queries; with ms, set the threshold
//	\wal            show durability stats and fail-stop/degraded state
//	\checkpoint     force a snapshot + WAL truncation (persistent mode)
//	\q              quit (persistent mode: checkpoint and close cleanly)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bridgescope/internal/bench/birdext"
	"bridgescope/internal/sqldb"
	"bridgescope/internal/sqldb/stats"
	"bridgescope/internal/sqldb/stats/httpexport"
)

func main() {
	seed := flag.Int64("seed", 42, "benchmark data seed")
	data := flag.String("data", "", "persistent database directory (empty = in-memory BIRD-Ext)")
	syncMode := flag.String("sync", "batch", "WAL sync mode with -data: off, batch (group commit), always")
	metrics := flag.String("metrics", "", "serve Prometheus/JSON stats over HTTP at this address (e.g. :8181)")
	flag.Parse()

	var engine *sqldb.Engine
	if *data != "" {
		mode, ok := sqldb.ParseSyncMode(*syncMode)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -sync mode %q (want off, batch, or always)\n", *syncMode)
			os.Exit(1)
		}
		var err error
		engine, err = sqldb.OpenEngine(*data, sqldb.Options{Sync: mode})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer engine.Close()
		n := len(engine.TableNames())
		fmt.Printf("sqlshell — persistent database at %s (sync=%s, %d table(s) recovered, user: root)\n",
			*data, mode, n)
	} else {
		engine = birdext.BuildEngine(*seed)
		fmt.Println("sqlshell — embedded engine with the BIRD-Ext database (user: root)")
	}
	if *metrics != "" {
		errc := httpexport.ListenAndServe(*metrics, engine.Stats)
		select {
		case err := <-errc:
			fmt.Fprintln(os.Stderr, "metrics listener:", err)
			os.Exit(1)
		case <-time.After(50 * time.Millisecond):
			fmt.Printf("metrics: http://%s/metrics (Prometheus) and /stats.json\n", *metrics)
		}
	}
	session := engine.NewSession("root")
	fmt.Println(`type SQL terminated by newline, \d to list tables, \q to quit`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Printf("%s@%s> ", session.User(), engine.Name)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if done := metaCommand(engine, &session, line); done {
				return
			}
			continue
		}
		res, err := session.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			if sqldb.IsRetryable(err) {
				fmt.Println("hint: a concurrent transaction wrote the same rows; ROLLBACK and retry the transaction")
			}
			continue
		}
		fmt.Println(res.Text())
	}
}

// metaCommand handles backslash commands; returns true on quit.
func metaCommand(engine *sqldb.Engine, session **sqldb.Session, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\q`:
		return true
	case `\d`:
		if len(fields) == 1 {
			for _, name := range engine.TableNames() {
				t, _ := engine.Table(name)
				fmt.Printf("%-12s (%d rows)\n", name, t.RowCount())
			}
			return false
		}
		t, ok := engine.Table(fields[1])
		if !ok {
			fmt.Printf("no table %q\n", fields[1])
			return false
		}
		fmt.Println(sqldb.SchemaSQL(t))
	case `\user`:
		if len(fields) != 2 {
			fmt.Println("usage: \\user <name>")
			return false
		}
		*session = engine.NewSession(fields[1])
		fmt.Printf("now acting as %q\n", fields[1])
	case `\grant`:
		if len(fields) != 4 {
			fmt.Println("usage: \\grant <user> <action> <table>")
			return false
		}
		action, ok := sqldb.ParseAction(fields[2])
		if !ok {
			fmt.Printf("unknown action %q\n", fields[2])
			return false
		}
		engine.Grants().Grant(fields[1], action, fields[3])
		fmt.Println("granted")
	case `\cache`:
		cs := engine.PlanCacheSnapshot()
		total := cs.Hits + cs.Misses
		ratio := 0.0
		if total > 0 {
			ratio = float64(cs.Hits) / float64(total)
		}
		fmt.Printf("plan cache: %d hits, %d misses (%.0f%% hit rate), %d evictions, %d cached plans, catalog version %d\n",
			cs.Hits, cs.Misses, ratio*100, cs.Evictions, cs.Size, engine.CatalogVersion())
	case `\stats`:
		printStatsSnapshot(engine.Stats())
	case `\slowlog`:
		if len(fields) == 2 {
			ms, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				fmt.Println("usage: \\slowlog [threshold-ms]")
				return false
			}
			engine.SetSlowQueryThreshold(time.Duration(ms * float64(time.Millisecond)))
			fmt.Printf("slow-query threshold set to %s\n", engine.SlowQueryThreshold())
			return false
		}
		entries := engine.SlowQueries()
		fmt.Printf("slow-query log: threshold %s, %d retained\n", engine.SlowQueryThreshold(), len(entries))
		for _, q := range entries {
			fmt.Printf("-- %s user=%s dur=%.3fms rows=%d retries=%d\n   %s\n",
				q.Time.Format("15:04:05.000"), q.User,
				float64(q.DurationNs)/1e6, q.Rows, q.Retries, q.SQL)
			if q.Plan != "" {
				for _, line := range strings.Split(q.Plan, "\n") {
					fmt.Println("   | " + line)
				}
			}
		}
	case `\wal`:
		st := engine.Durability()
		if !st.Durable {
			fmt.Println("durability: in-memory engine (no WAL; start with -data DIR to persist)")
			return false
		}
		fmt.Printf("durability: dir=%s sync=%s\n", st.Dir, st.Mode)
		fmt.Printf("  commits %d (records %d), lsn %d\n", st.Commits, st.Records, st.LSN)
		fmt.Printf("  fsyncs %d, group flushes %d", st.Fsyncs, st.GroupFlushes)
		if st.GroupFlushes > 0 {
			fmt.Printf(" (%.1f commits/fsync)", float64(st.Commits)/float64(st.GroupFlushes))
		}
		fmt.Println()
		fmt.Printf("  wal segment %d (%d bytes, %d appended total), checkpoints %d\n",
			st.Segment, st.WALSize, st.WALBytes, st.Checkpoints)
		if h := engine.Health(); h.Degraded {
			fmt.Printf("  STATE: fail-stopped, read-only (degraded by %s: %s)\n", h.DegradedBy, h.DegradedErr)
			fmt.Printf("  %s\n", h.Reason)
		} else {
			fmt.Println("  state: healthy (read-write)")
		}
	case `\checkpoint`:
		if !engine.Durability().Durable {
			fmt.Println("durability: in-memory engine (no WAL; start with -data DIR to persist)")
			return false
		}
		// MVCC snapshots serialize only committed-visible versions, so a
		// checkpoint proceeds even while transactions are open.
		if err := engine.Checkpoint(); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("checkpointed")
		}
		if h := engine.Health(); h.LastCheckpointErr != "" {
			fmt.Printf("last checkpoint error: %s\n", h.LastCheckpointErr)
		}
	case `\parallel`:
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Println("usage: \\parallel on|off")
			return false
		}
		(*session).SetParallel(fields[1] == "on")
		fmt.Printf("parallel batched execution %s for this session\n", fields[1])
	default:
		fmt.Printf("unknown command %s\n", fields[0])
	}
	return false
}

// printStatsSnapshot renders the engine-wide metrics snapshot for \stats.
func printStatsSnapshot(s stats.Snapshot) {
	fmt.Printf("metrics: enabled=%v\n", s.Enabled)
	fmt.Println("statements:")
	for _, kind := range []string{"select", "insert", "update", "delete", "txn", "ddl", "other"} {
		h, ok := s.Statements[kind]
		if !ok {
			continue
		}
		fmt.Printf("  %-7s %8d calls, mean %s, p50 %s, p99 %s\n",
			kind, h.Count, fmtNs(h.Mean()), fmtNs(float64(h.Quantile(0.5))), fmtNs(float64(h.Quantile(0.99))))
	}
	fmt.Printf("rows: scanned %d, dml-visited %d, returned %d\n",
		s.RowsScanned, s.DMLRowsVisited, s.RowsReturned)
	fmt.Printf("plan cache: %d hits, %d misses, %d evictions, %d cached\n",
		s.PlanCache.Hits, s.PlanCache.Misses, s.PlanCache.Evictions, s.PlanCache.Size)
	if s.WAL.Durable {
		fmt.Printf("wal: %d commits, %d fsyncs (mean %s), append mean %s, group-commit mean %.1f commits/flush\n",
			s.WAL.Commits, s.WAL.Fsyncs, fmtNs(s.WAL.FsyncNs.Mean()),
			fmtNs(s.WAL.AppendNs.Mean()), s.WAL.BatchCommits.Mean())
		fmt.Printf("checkpoints: %d (mean %s)\n", s.Checkpoint.Count, fmtNs(s.Checkpoint.DurationNs.Mean()))
	} else {
		fmt.Println("wal: in-memory engine (no WAL)")
	}
	fmt.Printf("mvcc: %d conflicts, %d aborts, %d retries, %d open txns, gc horizon lag %d\n",
		s.MVCC.Conflicts, s.MVCC.Aborts, s.MVCC.Retries, s.MVCC.OpenTxns, s.MVCC.GCHorizonLag)
	fmt.Printf("locks: %d table, %d global acquires, max %d concurrent writers, wait mean %s\n",
		s.Locks.TableAcquires, s.Locks.GlobalAcquires, s.Locks.MaxConcurrentWriters, fmtNs(s.Locks.WaitNs.Mean()))
	fmt.Printf("parallel: %d batches, %d morsels, workers mean %.1f\n",
		s.Parallel.Batches, s.Parallel.Morsels, s.Parallel.Workers.Mean())
	if s.Health.Degraded {
		fmt.Printf("health: DEGRADED (%s), %d transitions\n", s.Health.Reason, s.Health.Transitions)
	} else {
		fmt.Println("health: ok")
	}
	fmt.Printf("slow queries: %d over %s (\\slowlog to list)\n",
		s.SlowLog.Total, time.Duration(s.SlowLog.ThresholdNs))
}

// fmtNs renders a nanosecond quantity in a human unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
