// Command sqlshell is an interactive shell over the embedded sqldb engine.
// It starts with the BIRD-Ext benchmark database loaded and a superuser
// session; use \user to switch identities and exercise the privilege
// system.
//
// Meta commands:
//
//	\d              list tables
//	\d <table>      show a table's DDL
//	\user <name>    switch the session user
//	\grant <user> <action> <table>   grant a privilege (superuser)
//	\cache          show plan-cache hit/miss counters and catalog version
//	\q              quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"bridgescope/internal/bench/birdext"
	"bridgescope/internal/sqldb"
)

func main() {
	seed := flag.Int64("seed", 42, "benchmark data seed")
	flag.Parse()

	engine := birdext.BuildEngine(*seed)
	session := engine.NewSession("root")
	fmt.Println("sqlshell — embedded engine with the BIRD-Ext database (user: root)")
	fmt.Println(`type SQL terminated by newline, \d to list tables, \q to quit`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Printf("%s@%s> ", session.User(), engine.Name)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if done := metaCommand(engine, &session, line); done {
				return
			}
			continue
		}
		res, err := session.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Println(res.Text())
	}
}

// metaCommand handles backslash commands; returns true on quit.
func metaCommand(engine *sqldb.Engine, session **sqldb.Session, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\q`:
		return true
	case `\d`:
		if len(fields) == 1 {
			for _, name := range engine.TableNames() {
				t, _ := engine.Table(name)
				fmt.Printf("%-12s (%d rows)\n", name, t.RowCount())
			}
			return false
		}
		t, ok := engine.Table(fields[1])
		if !ok {
			fmt.Printf("no table %q\n", fields[1])
			return false
		}
		fmt.Println(sqldb.SchemaSQL(t))
	case `\user`:
		if len(fields) != 2 {
			fmt.Println("usage: \\user <name>")
			return false
		}
		*session = engine.NewSession(fields[1])
		fmt.Printf("now acting as %q\n", fields[1])
	case `\grant`:
		if len(fields) != 4 {
			fmt.Println("usage: \\grant <user> <action> <table>")
			return false
		}
		action, ok := sqldb.ParseAction(fields[2])
		if !ok {
			fmt.Printf("unknown action %q\n", fields[2])
			return false
		}
		engine.Grants().Grant(fields[1], action, fields[3])
		fmt.Println("granted")
	case `\cache`:
		hits, misses := engine.PlanCacheStats()
		total := hits + misses
		ratio := 0.0
		if total > 0 {
			ratio = float64(hits) / float64(total)
		}
		fmt.Printf("plan cache: %d hits, %d misses (%.0f%% hit rate), catalog version %d\n",
			hits, misses, ratio*100, engine.CatalogVersion())
	default:
		fmt.Printf("unknown command %s\n", fields[0])
	}
	return false
}
