// Command sqlshell is an interactive shell over the embedded sqldb engine.
// By default it starts with the BIRD-Ext benchmark database loaded in
// memory and a superuser session; with -data it opens (or creates) a
// persistent database instead — every committed statement is written to a
// write-ahead log under the directory and the full state survives restarts.
// Use \user to switch identities and exercise the privilege system.
//
// Usage:
//
//	sqlshell [-seed N] [-data DIR] [-sync off|batch|always]
//
// Meta commands:
//
//	\d              list tables
//	\d <table>      show a table's DDL
//	\user <name>    switch the session user
//	\grant <user> <action> <table>   grant a privilege (superuser)
//	\cache          show plan-cache hit/miss counters and catalog version
//	\wal            show durability stats and fail-stop/degraded state
//	\checkpoint     force a snapshot + WAL truncation (persistent mode)
//	\q              quit (persistent mode: checkpoint and close cleanly)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"bridgescope/internal/bench/birdext"
	"bridgescope/internal/sqldb"
)

func main() {
	seed := flag.Int64("seed", 42, "benchmark data seed")
	data := flag.String("data", "", "persistent database directory (empty = in-memory BIRD-Ext)")
	syncMode := flag.String("sync", "batch", "WAL sync mode with -data: off, batch (group commit), always")
	flag.Parse()

	var engine *sqldb.Engine
	if *data != "" {
		mode, ok := sqldb.ParseSyncMode(*syncMode)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown -sync mode %q (want off, batch, or always)\n", *syncMode)
			os.Exit(1)
		}
		var err error
		engine, err = sqldb.OpenEngine(*data, sqldb.Options{Sync: mode})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer engine.Close()
		n := len(engine.TableNames())
		fmt.Printf("sqlshell — persistent database at %s (sync=%s, %d table(s) recovered, user: root)\n",
			*data, mode, n)
	} else {
		engine = birdext.BuildEngine(*seed)
		fmt.Println("sqlshell — embedded engine with the BIRD-Ext database (user: root)")
	}
	session := engine.NewSession("root")
	fmt.Println(`type SQL terminated by newline, \d to list tables, \q to quit`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Printf("%s@%s> ", session.User(), engine.Name)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if done := metaCommand(engine, &session, line); done {
				return
			}
			continue
		}
		res, err := session.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			if sqldb.IsRetryable(err) {
				fmt.Println("hint: a concurrent transaction wrote the same rows; ROLLBACK and retry the transaction")
			}
			continue
		}
		fmt.Println(res.Text())
	}
}

// metaCommand handles backslash commands; returns true on quit.
func metaCommand(engine *sqldb.Engine, session **sqldb.Session, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\q`:
		return true
	case `\d`:
		if len(fields) == 1 {
			for _, name := range engine.TableNames() {
				t, _ := engine.Table(name)
				fmt.Printf("%-12s (%d rows)\n", name, t.RowCount())
			}
			return false
		}
		t, ok := engine.Table(fields[1])
		if !ok {
			fmt.Printf("no table %q\n", fields[1])
			return false
		}
		fmt.Println(sqldb.SchemaSQL(t))
	case `\user`:
		if len(fields) != 2 {
			fmt.Println("usage: \\user <name>")
			return false
		}
		*session = engine.NewSession(fields[1])
		fmt.Printf("now acting as %q\n", fields[1])
	case `\grant`:
		if len(fields) != 4 {
			fmt.Println("usage: \\grant <user> <action> <table>")
			return false
		}
		action, ok := sqldb.ParseAction(fields[2])
		if !ok {
			fmt.Printf("unknown action %q\n", fields[2])
			return false
		}
		engine.Grants().Grant(fields[1], action, fields[3])
		fmt.Println("granted")
	case `\cache`:
		hits, misses := engine.PlanCacheStats()
		total := hits + misses
		ratio := 0.0
		if total > 0 {
			ratio = float64(hits) / float64(total)
		}
		fmt.Printf("plan cache: %d hits, %d misses (%.0f%% hit rate), catalog version %d\n",
			hits, misses, ratio*100, engine.CatalogVersion())
	case `\wal`:
		st := engine.Durability()
		if !st.Durable {
			fmt.Println("durability: in-memory engine (no WAL; start with -data DIR to persist)")
			return false
		}
		fmt.Printf("durability: dir=%s sync=%s\n", st.Dir, st.Mode)
		fmt.Printf("  commits %d (records %d), lsn %d\n", st.Commits, st.Records, st.LSN)
		fmt.Printf("  fsyncs %d, group flushes %d", st.Fsyncs, st.GroupFlushes)
		if st.GroupFlushes > 0 {
			fmt.Printf(" (%.1f commits/fsync)", float64(st.Commits)/float64(st.GroupFlushes))
		}
		fmt.Println()
		fmt.Printf("  wal segment %d (%d bytes, %d appended total), checkpoints %d\n",
			st.Segment, st.WALSize, st.WALBytes, st.Checkpoints)
		if h := engine.Health(); h.Degraded {
			fmt.Printf("  STATE: fail-stopped, read-only (degraded by %s: %s)\n", h.DegradedBy, h.DegradedErr)
			fmt.Println("  writes are refused until the fault is fixed and the engine reopened")
		} else {
			fmt.Println("  state: healthy (read-write)")
		}
	case `\checkpoint`:
		if !engine.Durability().Durable {
			fmt.Println("durability: in-memory engine (no WAL; start with -data DIR to persist)")
			return false
		}
		// MVCC snapshots serialize only committed-visible versions, so a
		// checkpoint proceeds even while transactions are open.
		if err := engine.Checkpoint(); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("checkpointed")
		}
		if h := engine.Health(); h.LastCheckpointErr != "" {
			fmt.Printf("last checkpoint error: %s\n", h.LastCheckpointErr)
		}
	case `\parallel`:
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Println("usage: \\parallel on|off")
			return false
		}
		(*session).SetParallel(fields[1] == "on")
		fmt.Printf("parallel batched execution %s for this session\n", fields[1])
	default:
		fmt.Printf("unknown command %s\n", fields[0])
	}
	return false
}
