package bridgescope_test

import (
	"fmt"
	"testing"

	"bridgescope/internal/experiments"
)

// The benchmarks below regenerate the paper's evaluation (§3), one
// benchmark per table/figure. They run a sampled slice of each benchmark
// suite to keep -bench runs manageable; cmd/benchrunner reproduces the full
// versions. Custom metrics carry the quantities the paper reports (average
// LLM calls, tokens, ratios); ns/op is not the interesting number here.

func benchCfg() experiments.Config {
	return experiments.Config{Seed: 42, Sample: 10}
}

// BenchmarkFig5aContextRetrieval regenerates Figure 5(a): average #LLM
// calls with explicit context-retrieval tools vs a single execute_sql tool.
func BenchmarkFig5aContextRetrieval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5a(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			b.ReportMetric(r.AvgLLMCalls, metricName("calls", r.Model, string(r.Toolkit)))
		}
	}
}

// BenchmarkFig5bSQLExecution regenerates Figure 5(b): task accuracy of
// fine-grained SQL tools vs the generic tool.
func BenchmarkFig5bSQLExecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5b(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			b.ReportMetric(r.Accuracy, metricName("acc", r.Model, string(r.Toolkit)))
		}
	}
}

// BenchmarkFig5cTransactions regenerates Figure 5(c): the transaction
// trigger ratio on write tasks.
func BenchmarkFig5cTransactions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5c(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			b.ReportMetric(r.TriggerRatio, metricName("ratio", r.Model, string(r.Toolkit)))
		}
	}
}

// BenchmarkFig6PrivilegeCalls regenerates Figure 6: average #LLM calls per
// (user, task type) cell.
func BenchmarkFig6PrivilegeCalls(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			b.ReportMetric(r.AvgLLMCalls, metricName("calls", r.Model, string(r.Toolkit)+r.Cell.String()))
		}
	}
}

// BenchmarkTable1Tokens regenerates Table 1: token usage per cell.
func BenchmarkTable1Tokens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			b.ReportMetric(r.AvgTokens, metricName("tok", r.Model, string(r.Toolkit)+r.Cell.String()))
		}
	}
}

// BenchmarkTable2Proxy regenerates Table 2: completion rate, tokens, and
// LLM calls on the NL2ML data-intensive workflows.
func BenchmarkTable2Proxy(b *testing.B) {
	cfg := benchCfg()
	cfg.Sample = 6
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			b.ReportMetric(r.CompletionRate, metricName("done", r.Model, string(r.Toolkit)))
			b.ReportMetric(r.AvgTokens, metricName("tok", r.Model, string(r.Toolkit)))
			b.ReportMetric(r.AvgLLMCalls, metricName("calls", r.Model, string(r.Toolkit)))
		}
	}
}

// BenchmarkIdealizedTransfer regenerates the §3.4(3) lower-bound estimate:
// an idealized unlimited-context agent still pays two full-table transfers.
func BenchmarkIdealizedTransfer(b *testing.B) {
	cfg := benchCfg()
	cfg.Sample = 10
	for i := 0; i < b.N; i++ {
		res, err := experiments.IdealizedTransfer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.IdealizedAgentTokens), "tok-idealized")
		b.ReportMetric(res.BridgeScopeTokens, "tok-bridgescope")
		b.ReportMetric(res.Ratio, "x-ratio")
	}
}

// BenchmarkAblationPrivilegeAnnotations, and the companions below, measure
// the design choices DESIGN.md calls out.
func BenchmarkAblationDesignChoices(b *testing.B) {
	cfg := benchCfg()
	cfg.Sample = 30
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablations(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			b.ReportMetric(r.Value, sanitize(r.Name)+"-ablated")
			b.ReportMetric(r.Baseline, sanitize(r.Name)+"-base")
		}
	}
}

func metricName(kind, model, rest string) string {
	return sanitize(fmt.Sprintf("%s-%s-%s", kind, shortModel(model), rest))
}

func shortModel(m string) string {
	if len(m) > 3 && m[:3] == "gpt" {
		return "gpt"
	}
	return "claude"
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			out = append(out, r)
		case r == ' ' || r == ',' || r == '(' || r == ')':
			if len(out) > 0 && out[len(out)-1] != '-' {
				out = append(out, '-')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '-' {
		out = out[:len(out)-1]
	}
	return string(out)
}
