GO ?= go
SQLVET := $(CURDIR)/bin/sqlvet

.PHONY: all build test race lint vet sqlvet staticcheck vulncheck bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint is the one entry point CI and developers share: the stock go vet
# checks plus the repo's own invariant analyzers (cmd/sqlvet) run as a
# vettool, so lock-order, MVCC-visibility, redo-coverage, and
# retryable-error violations fail the build exactly like any vet finding.
lint: vet sqlvet

vet:
	$(GO) vet ./...

$(SQLVET): $(shell find cmd/sqlvet internal/analysis -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	@mkdir -p $(dir $(SQLVET))
	$(GO) build -o $(SQLVET) ./cmd/sqlvet

sqlvet: $(SQLVET)
	$(GO) vet -vettool=$(SQLVET) ./...

# Optional extra linters; skipped gracefully when the tools are not on PATH
# (this repo's build environment is offline — CI installs pinned versions).
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; skipping (CI pins honnef.co/go/tools@2025.1.1)"

vulncheck:
	@command -v govulncheck >/dev/null 2>&1 && govulncheck ./... || echo "govulncheck not installed; skipping (CI pins golang.org/x/vuln@v1.1.4)"

bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./internal/sqldb

clean:
	rm -rf bin
