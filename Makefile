GO ?= go
SQLVET := $(CURDIR)/bin/sqlvet

.PHONY: all build test race lint vet sqlvet sqlvet-vettool sarif staticcheck vulncheck bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint is the one entry point CI and developers share: the stock go vet
# checks plus the repo's own invariant analyzers (cmd/sqlvet) in standalone
# mode, gated by the checked-in baseline. The exit codes carry the verdict
# (0 clean, 1 findings or stale baseline, 2 analysis failure) — no output
# grepping anywhere.
lint: vet sqlvet

vet:
	$(GO) vet ./...

$(SQLVET): $(shell find cmd/sqlvet internal/analysis -name '*.go' -not -path '*/testdata/*' 2>/dev/null)
	@mkdir -p $(dir $(SQLVET))
	$(GO) build -o $(SQLVET) ./cmd/sqlvet

sqlvet: $(SQLVET)
	$(SQLVET) -baseline .sqlvet-baseline.json -fail-stale ./...

# The same analyzers driven by the go command's vet protocol (per-package
# caching, exit 2 on any diagnostic — the protocol's code, not ours).
sqlvet-vettool: $(SQLVET)
	$(GO) vet -vettool=$(SQLVET) ./...

# SARIF 2.1.0 report for code-scanning UIs; exit 1 (findings) still yields
# a report, so || distinguishes it from a genuine tool failure.
sarif: $(SQLVET)
	$(SQLVET) -sarif ./... > sqlvet.sarif || [ $$? -eq 1 ]

# Optional extra linters; skipped gracefully when the tools are not on PATH
# (this repo's build environment is offline — CI installs pinned versions).
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; skipping (CI pins honnef.co/go/tools@2025.1.1)"

vulncheck:
	@command -v govulncheck >/dev/null 2>&1 && govulncheck ./... || echo "govulncheck not installed; skipping (CI pins golang.org/x/vuln@v1.1.4)"

bench:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./internal/sqldb

clean:
	rm -rf bin sqlvet.sarif
