// Package bridgescope is a from-scratch Go reproduction of "BridgeScope: A
// Universal Toolkit for Bridging Large Language Models and Databases"
// (CIDR 2026).
//
// The toolkit itself lives in internal/core; every substrate it runs on —
// the embedded SQL engine (internal/sqldb), the MCP-style tool protocol
// (internal/mcp), the simulated GPT-4o/Claude-4 agents (internal/llm,
// internal/agent), the baselines (internal/pgmcp), the ML tools
// (internal/mltools), and the two benchmarks (internal/bench/...) — is
// implemented here with the standard library only.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The root bench_test.go
// regenerates every table and figure of the paper's evaluation.
package bridgescope
